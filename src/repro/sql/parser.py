"""Recursive-descent parser for the SQL subset."""

from __future__ import annotations

from repro.sql import ast
from repro.sql.lexer import SQLSyntaxError, Token, tokenize

_AGG_FUNCS = {"SUM", "COUNT", "MIN", "MAX", "AVG"}
_CMP_OPS = {"=", "!=", "<", "<=", ">", ">="}


class Parser:
    """One-token-lookahead parser over the token list."""

    def __init__(self, text: str) -> None:
        self._tokens = tokenize(text)
        self._pos = 0

    # -- plumbing ------------------------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._current
        self._pos += 1
        return token

    def _check(self, kind: str, value: str | None = None) -> bool:
        token = self._current
        return token.kind == kind and (value is None or token.value == value)

    def _accept(self, kind: str, value: str | None = None) -> Token | None:
        if self._check(kind, value):
            return self._advance()
        return None

    def _expect(self, kind: str, value: str | None = None) -> Token:
        token = self._accept(kind, value)
        if token is None:
            want = value or kind
            raise SQLSyntaxError(
                f"expected {want!r}, found {self._current} at position "
                f"{self._current.position}"
            )
        return token

    # -- entry points ------------------------------------------------------------------

    def parse_statement(
        self,
    ) -> (
        ast.CreateView
        | ast.CreateAssertion
        | ast.SelectStmt
        | ast.InsertStmt
        | ast.DeleteStmt
        | ast.UpdateStmt
    ):
        if self._check("keyword", "CREATE"):
            self._advance()
            if self._accept("keyword", "VIEW"):
                stmt: object = self._create_view()
            elif self._accept("keyword", "ASSERTION"):
                stmt = self._create_assertion()
            else:
                raise SQLSyntaxError(f"expected VIEW or ASSERTION, found {self._current}")
        elif self._check("keyword", "INSERT"):
            stmt = self._insert()
        elif self._check("keyword", "DELETE"):
            stmt = self._delete()
        elif self._check("keyword", "UPDATE"):
            stmt = self._update()
        else:
            stmt = self._select()
        self._accept("symbol", ";")
        self._expect("eof")
        return stmt

    # -- DML ----------------------------------------------------------------------------

    def _insert(self) -> ast.InsertStmt:
        self._expect("keyword", "INSERT")
        self._expect("keyword", "INTO")
        table = self._expect("ident").value
        self._expect("keyword", "VALUES")
        rows = [self._value_row()]
        while self._accept("symbol", ","):
            rows.append(self._value_row())
        return ast.InsertStmt(table, tuple(rows))

    def _value_row(self) -> tuple:
        self._expect("symbol", "(")
        values = [self._literal_value()]
        while self._accept("symbol", ","):
            values.append(self._literal_value())
        self._expect("symbol", ")")
        return tuple(values)

    def _literal_value(self):
        negative = self._accept("symbol", "-") is not None
        token = self._current
        if token.kind == "number":
            self._advance()
            value: object = float(token.value) if "." in token.value else int(token.value)
            return -value if negative else value
        if token.kind == "string" and not negative:
            self._advance()
            return token.value
        raise SQLSyntaxError(f"expected a literal, found {token}")

    def _delete(self) -> ast.DeleteStmt:
        self._expect("keyword", "DELETE")
        self._expect("keyword", "FROM")
        table = self._expect("ident").value
        where = None
        if self._accept("keyword", "WHERE"):
            where = self._condition()
        return ast.DeleteStmt(table, where)

    def _update(self) -> ast.UpdateStmt:
        self._expect("keyword", "UPDATE")
        table = self._expect("ident").value
        self._expect("keyword", "SET")
        assignments = [self._assignment()]
        while self._accept("symbol", ","):
            assignments.append(self._assignment())
        where = None
        if self._accept("keyword", "WHERE"):
            where = self._condition()
        return ast.UpdateStmt(table, tuple(assignments), where)

    def _assignment(self) -> ast.Assignment:
        column = self._expect("ident").value
        self._expect("symbol", "=")
        return ast.Assignment(column, self._scalar())

    def _create_view(self) -> ast.CreateView:
        name = self._expect("ident").value
        columns: tuple[str, ...] = ()
        if self._accept("symbol", "("):
            cols = [self._expect("ident").value]
            while self._accept("symbol", ","):
                cols.append(self._expect("ident").value)
            self._expect("symbol", ")")
            columns = tuple(cols)
        self._expect("keyword", "AS")
        return ast.CreateView(name, columns, self._select())

    def _create_assertion(self) -> ast.CreateAssertion:
        name = self._expect("ident").value
        self._expect("keyword", "CHECK")
        self._expect("symbol", "(")
        self._expect("keyword", "NOT")
        self._expect("keyword", "EXISTS")
        self._expect("symbol", "(")
        select = self._select()
        self._expect("symbol", ")")
        self._expect("symbol", ")")
        return ast.CreateAssertion(name, select)

    # -- SELECT ---------------------------------------------------------------------------

    def _select(self) -> ast.SelectStmt:
        self._expect("keyword", "SELECT")
        distinct = self._accept("keyword", "DISTINCT") is not None
        items = [self._select_item()]
        while self._accept("symbol", ","):
            items.append(self._select_item())
        self._expect("keyword", "FROM")
        tables = [self._table_ref()]
        while self._accept("symbol", ","):
            tables.append(self._table_ref())
        where = None
        if self._accept("keyword", "WHERE"):
            where = self._condition()
        group_by: tuple[ast.ColumnRef, ...] = ()
        if self._accept("keyword", "GROUPBY") or (
            self._accept("keyword", "GROUP") and self._expect("keyword", "BY")
        ):
            cols = [self._column_ref()]
            while self._accept("symbol", ","):
                cols.append(self._column_ref())
            group_by = tuple(cols)
        having = None
        if self._accept("keyword", "HAVING"):
            having = self._condition()
        return ast.SelectStmt(
            items=tuple(items),
            tables=tuple(tables),
            where=where,
            group_by=group_by,
            having=having,
            distinct=distinct,
        )

    def _select_item(self) -> ast.SelectItem:
        if self._check("symbol", "*"):
            self._advance()
            return ast.SelectItem(ast.Literal(None), star=True)
        expr = self._scalar()
        alias = None
        if self._accept("keyword", "AS"):
            alias = self._expect("ident").value
        elif self._check("ident"):
            alias = self._advance().value
        return ast.SelectItem(expr, alias)

    def _table_ref(self) -> ast.TableRef:
        name = self._expect("ident").value
        alias = None
        if self._check("ident"):
            alias = self._advance().value
        return ast.TableRef(name, alias)

    def _column_ref(self) -> ast.ColumnRef:
        first = self._expect("ident").value
        if self._accept("symbol", "."):
            second = self._expect("ident").value
            return ast.ColumnRef(first, second)
        return ast.ColumnRef(None, first)

    # -- conditions ------------------------------------------------------------------------

    def _condition(self) -> ast.Condition:
        return self._or_condition()

    def _or_condition(self) -> ast.Condition:
        left = self._and_condition()
        while self._accept("keyword", "OR"):
            left = ast.BoolOp("or", left, self._and_condition())
        return left

    def _and_condition(self) -> ast.Condition:
        left = self._not_condition()
        while self._accept("keyword", "AND"):
            left = ast.BoolOp("and", left, self._not_condition())
        return left

    def _not_condition(self) -> ast.Condition:
        if self._accept("keyword", "NOT"):
            return ast.NotOp(self._not_condition())
        if self._check("symbol", "("):
            # Could be a parenthesized condition; try it, falling back to a
            # comparison whose left side is parenthesized arithmetic.
            saved = self._pos
            self._advance()
            try:
                inner = self._condition()
                self._expect("symbol", ")")
                return inner
            except SQLSyntaxError:
                self._pos = saved
        return self._comparison()

    def _comparison(self) -> ast.Comparison:
        left = self._scalar()
        token = self._current
        if token.kind == "symbol" and token.value in _CMP_OPS:
            self._advance()
            right = self._scalar()
            return ast.Comparison(token.value, left, right)
        raise SQLSyntaxError(f"expected comparison operator, found {token}")

    # -- scalar expressions -----------------------------------------------------------------

    def _scalar(self) -> ast.ScalarExpr:
        return self._additive()

    def _additive(self) -> ast.ScalarExpr:
        left = self._multiplicative()
        while self._current.kind == "symbol" and self._current.value in ("+", "-"):
            op = self._advance().value
            left = ast.BinaryOp(op, left, self._multiplicative())
        return left

    def _multiplicative(self) -> ast.ScalarExpr:
        left = self._primary()
        while self._current.kind == "symbol" and self._current.value in ("*", "/"):
            op = self._advance().value
            left = ast.BinaryOp(op, left, self._primary())
        return left

    def _primary(self) -> ast.ScalarExpr:
        token = self._current
        if token.kind == "number":
            self._advance()
            value: object = float(token.value) if "." in token.value else int(token.value)
            return ast.Literal(value)
        if token.kind == "string":
            self._advance()
            return ast.Literal(token.value)
        if token.kind == "keyword" and token.value in _AGG_FUNCS:
            func = self._advance().value.lower()
            self._expect("symbol", "(")
            if self._accept("symbol", "*"):
                if func != "count":
                    raise SQLSyntaxError(f"{func.upper()}(*) is not valid")
                arg = None
            else:
                arg = self._scalar()
            self._expect("symbol", ")")
            return ast.AggregateCall(func, arg)
        if token.kind == "ident":
            return self._column_ref()
        if self._accept("symbol", "("):
            inner = self._scalar()
            self._expect("symbol", ")")
            return inner
        raise SQLSyntaxError(f"unexpected token {token} in expression")


def parse(text: str):
    """Parse one SQL statement (DDL, query, or DML)."""
    return Parser(text).parse_statement()
