"""SQL DML: INSERT / DELETE / UPDATE statements become deltas.

The paper's transactions are abstract update specs; this module gives them
SQL syntax. A DML statement evaluated against the stored database yields a
per-relation :class:`~repro.ivm.delta.Delta`, which the maintenance
machinery (e.g. the shell's :class:`~repro.ivm.maintainer.ViewMaintainer`)
then propagates to every materialized view.
"""

from __future__ import annotations

from repro.algebra.predicates import Predicate, TruePred
from repro.algebra.scalar import Scalar
from repro.ivm.delta import Delta
from repro.sql import ast
from repro.sql.parser import parse
from repro.sql.translate import SQLTranslationError, _AggregateCollector, _Scope
from repro.storage.database import Database
from repro.workload.transactions import Transaction

DML_STATEMENTS = (ast.InsertStmt, ast.DeleteStmt, ast.UpdateStmt)


def is_dml(statement: object) -> bool:
    """Whether a parsed statement is INSERT, DELETE, or UPDATE."""
    return isinstance(statement, DML_STATEMENTS)


def _single_table_scope(db: Database, table: str) -> _Scope:
    if table not in db:
        raise SQLTranslationError(f"unknown relation {table!r}")
    scope = _Scope()
    scope.tables[table] = db.relation(table).schema
    return scope


def _translate_condition(
    condition: ast.Condition | None, scope: _Scope
) -> Predicate:
    if condition is None:
        return TruePred()
    from repro.sql.translate import _translate_condition as translate

    return translate(condition, scope, aggregates=None)


def _translate_scalar(expr: ast.ScalarExpr, scope: _Scope) -> Scalar:
    collector = _AggregateCollector(scope)
    scalar = collector.translate(expr)
    if collector.specs:
        raise SQLTranslationError("aggregates are not allowed in DML expressions")
    return scalar


def dml_to_delta(statement, db: Database) -> tuple[str, Delta]:
    """Evaluate one parsed DML statement against the current database state,
    returning ``(relation name, delta)``. Nothing is applied."""
    if isinstance(statement, ast.InsertStmt):
        relation = db.relation(statement.table)
        rows = [relation.schema.validate_tuple(row) for row in statement.rows]
        return statement.table, Delta.insertion(rows)

    if isinstance(statement, ast.DeleteStmt):
        relation = db.relation(statement.table)
        scope = _single_table_scope(db, statement.table)
        predicate = _translate_condition(statement.where, scope)
        predicate.validate(relation.schema)
        names = relation.schema.names
        doomed = [
            row
            for row in relation.contents().expand()
            if predicate.eval(dict(zip(names, row)))
        ]
        return statement.table, Delta.deletion(doomed)

    if isinstance(statement, ast.UpdateStmt):
        relation = db.relation(statement.table)
        schema = relation.schema
        scope = _single_table_scope(db, statement.table)
        predicate = _translate_condition(statement.where, scope)
        predicate.validate(schema)
        assignments: list[tuple[int, Scalar]] = []
        for assignment in statement.assignments:
            index = schema.index_of(assignment.column)
            scalar = _translate_scalar(assignment.value, scope)
            scalar.output_type(schema)  # type-check eagerly
            assignments.append((index, scalar))
        names = schema.names
        pairs = []
        for row in relation.contents().expand():
            mapping = dict(zip(names, row))
            if not predicate.eval(mapping):
                continue
            new = list(row)
            for index, scalar in assignments:
                new[index] = scalar.eval(mapping)
            new_row = schema.validate_tuple(tuple(new))
            if new_row != row:
                pairs.append((row, new_row))
        return statement.table, Delta.modification(pairs)

    raise SQLTranslationError(f"not a DML statement: {type(statement).__name__}")


def execute_dml_text(
    text: str, db: Database, txn_name: str | None = None
) -> Transaction:
    """Parse + evaluate one DML statement; returns a Transaction (unapplied)."""
    statement = parse(text)
    if not is_dml(statement):
        raise SQLTranslationError("expected an INSERT, DELETE, or UPDATE statement")
    relation, delta = dml_to_delta(statement, db)
    name = txn_name if txn_name is not None else type(statement).__name__
    return Transaction(name, {relation: delta})
