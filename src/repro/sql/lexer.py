"""Tokenizer for the SQL subset the paper uses.

Covers CREATE VIEW / CREATE ASSERTION / SELECT–FROM–WHERE–GROUP BY–HAVING,
identifiers (optionally qualified), string and numeric literals, the
comparison and arithmetic operators, and parentheses/commas. Keywords are
case-insensitive; ``GROUPBY`` is accepted as a synonym for ``GROUP BY``
because the paper writes it that way.
"""

from __future__ import annotations

from dataclasses import dataclass
KEYWORDS = {
    "SELECT",
    "DISTINCT",
    "FROM",
    "WHERE",
    "GROUP",
    "GROUPBY",
    "BY",
    "HAVING",
    "AS",
    "AND",
    "OR",
    "NOT",
    "CREATE",
    "VIEW",
    "ASSERTION",
    "CHECK",
    "EXISTS",
    "SUM",
    "COUNT",
    "MIN",
    "MAX",
    "AVG",
    "UNION",
    "ALL",
    "EXCEPT",
    "INSERT",
    "INTO",
    "VALUES",
    "DELETE",
    "UPDATE",
    "SET",
}

SYMBOLS = ("<=", ">=", "!=", "<>", "=", "<", ">", "(", ")", ",", "*", "+", "-", "/", ";", ".")


class SQLSyntaxError(Exception):
    """Raised on malformed SQL input."""


@dataclass(frozen=True)
class Token:
    kind: str  # 'keyword' | 'ident' | 'number' | 'string' | 'symbol' | 'eof'
    value: str
    position: int

    def __str__(self) -> str:
        return f"{self.value!r}"


def tokenize(text: str) -> list[Token]:
    """Split SQL text into tokens (ending with an ``eof`` sentinel)."""
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and text[i : i + 2] == "--":
            newline = text.find("\n", i)
            i = n if newline < 0 else newline + 1
            continue
        if ch == "'":
            end = text.find("'", i + 1)
            if end < 0:
                raise SQLSyntaxError(f"unterminated string literal at {i}")
            tokens.append(Token("string", text[i + 1 : end], i))
            i = end + 1
            continue
        if ch.isdigit():
            j = i
            seen_dot = False
            while j < n and (text[j].isdigit() or (text[j] == "." and not seen_dot)):
                if text[j] == ".":
                    # A dot not followed by a digit terminates the number.
                    if j + 1 >= n or not text[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            tokens.append(Token("number", text[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            if word.upper() in KEYWORDS:
                tokens.append(Token("keyword", word.upper(), i))
            else:
                tokens.append(Token("ident", word, i))
            i = j
            continue
        for symbol in SYMBOLS:
            if text.startswith(symbol, i):
                value = "!=" if symbol == "<>" else symbol
                tokens.append(Token("symbol", value, i))
                i += len(symbol)
                break
        else:
            raise SQLSyntaxError(f"unexpected character {ch!r} at position {i}")
    tokens.append(Token("eof", "", n))
    return tokens
