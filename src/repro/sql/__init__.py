"""SQL frontend: lexer, parser, and translation to the algebra."""

from repro.sql.dml import dml_to_delta, execute_dml_text, is_dml
from repro.sql.lexer import SQLSyntaxError, tokenize
from repro.sql.parser import parse
from repro.sql.translate import SQLTranslationError, TranslationResult, translate_sql

__all__ = [
    "SQLSyntaxError",
    "dml_to_delta",
    "execute_dml_text",
    "is_dml",
    "SQLTranslationError",
    "TranslationResult",
    "parse",
    "tokenize",
    "translate_sql",
]
