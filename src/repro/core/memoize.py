"""Memoization layer for the Algorithm OptimalViewSet hot path.

The paper's Figure 4 precomputes the marking-independent update costs
``M[N, j]`` *once* (step 1) before enumerating candidate view sets; the
seed implementation recomputed them — and re-ran the affected test, track
enumeration, and query derivation — for every one of the 2^k markings.
:class:`SearchCache` restores the paper's structure and extends it to the
other marking-recurrent quantities:

* **M[N, j] and the affected bitmap** — ``update_cost`` is
  marking-independent by the :class:`~repro.cost.model.CostModel` contract,
  and whether a node is affected depends only on the transaction's updated
  relations; both are computed once per (node, transaction type).
* **Update tracks** — keyed by ``(frozenset(affected marked nodes), txn)``.
  Tracks depend only on which marked nodes receive a delta, and the same
  affected subset recurs across many markings (every marking that differs
  only in unaffected nodes shares its tracks).
* **Maintenance queries** — keyed by ``(op, txn, own-group-marked?)``.
  :func:`~repro.dag.queries.derive_queries` consults the marking only to
  decide whether the op's own aggregate is self-maintainable, so two bits
  of context fully determine the result.
* **Per-query costs** — keyed by the query identity plus the marking
  restricted to the query target's descendants. A
  :class:`~repro.cost.page_io.PageIOCostModel` lookup can only be
  influenced by materialized nodes below its target, so structurally
  identical restrictions share one entry. This layer is enabled only for
  cost models that declare ``marking_locality`` and inherit the stock
  MQO ``total_query_cost``; other models are delegated to wholesale.

All keys use canonical (union-find representative) group ids. A cache is
valid as long as the memo structure, the estimator's statistics, and the
mapping from transaction-type *name* to update spec stay fixed; transaction
weights may change freely (nothing cached depends on them), which is what
lets :class:`~repro.core.adaptive.AdaptiveMaintainer` keep one cache across
re-optimizations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.cost.estimates import DagEstimator
from repro.cost.model import CostModel
from repro.core.tracks import UpdateTrack, collect_tracks
from repro.dag.memo import Memo
from repro.dag.nodes import OperationNode
from repro.dag.queries import MaintenanceQuery, derive_queries
from repro.workload.transactions import TransactionType


@dataclass
class OptimizerStats:
    """Counters and timings for one view-set search (or a shared cache).

    ``*_hits`` / ``*_misses`` count cache consultations per layer;
    ``phase_seconds`` records wall-clock per search phase (``precompute``,
    ``shielding``, ``search``).
    """

    view_sets_costed: int = 0
    update_costs_computed: int = 0
    track_hits: int = 0
    track_misses: int = 0
    tracks_enumerated: int = 0
    query_hits: int = 0
    query_misses: int = 0
    cost_hits: int = 0
    cost_misses: int = 0
    phase_seconds: dict[str, float] = field(default_factory=dict)

    def add_phase(self, name: str, seconds: float) -> None:
        self.phase_seconds[name] = self.phase_seconds.get(name, 0.0) + seconds

    @property
    def cache_hits(self) -> int:
        return self.track_hits + self.query_hits + self.cost_hits

    @property
    def cache_misses(self) -> int:
        return self.track_misses + self.query_misses + self.cost_misses

    @staticmethod
    def _ratio(hits: int, misses: int) -> str:
        total = hits + misses
        if not total:
            return "0 hits"
        return f"{hits}/{total} hits ({100.0 * hits / total:.0f}%)"

    def lines(self) -> list[str]:
        out = [
            f"view sets costed: {self.view_sets_costed}",
            f"M[N, j] update costs computed: {self.update_costs_computed}",
            f"track cache: {self._ratio(self.track_hits, self.track_misses)}, "
            f"{self.tracks_enumerated} tracks enumerated",
            f"query cache: {self._ratio(self.query_hits, self.query_misses)}",
            f"query-cost cache: {self._ratio(self.cost_hits, self.cost_misses)}",
        ]
        if self.phase_seconds:
            phases = ", ".join(
                f"{name} {seconds * 1000.0:.1f}ms"
                for name, seconds in self.phase_seconds.items()
            )
            out.append(f"wall clock: {phases}")
        return out


class SearchCache:
    """Shared memoization for view-set searches over one (memo, estimator,
    cost model) triple.

    One cache may serve many searches — the exhaustive loop, its shielding
    sub-searches, greedy hill climbing, and adaptive re-optimization — as
    long as the underlying DAG and statistics do not change.
    """

    def __init__(
        self,
        memo: Memo,
        cost_model: CostModel,
        estimator: DagEstimator,
    ) -> None:
        self.memo = memo
        self.cost_model = cost_model
        self.estimator = estimator
        self.stats = OptimizerStats()
        self._allow_self_maintenance = getattr(
            getattr(cost_model, "config", None), "self_maintenance", True
        )
        # Per-query cost caching requires the model's query costs to depend
        # only on the marking below the target, and the stock MQO
        # total_query_cost; anything else is delegated to wholesale.
        self._local_costs = bool(
            getattr(cost_model, "marking_locality", False)
        ) and type(cost_model).total_query_cost is CostModel.total_query_cost
        self._update_costs: dict[tuple[int, str], float] = {}
        self._affected: dict[str, frozenset[int]] = {}
        self._tracks: dict[
            tuple[frozenset[int], str, int | None],
            tuple[tuple[UpdateTrack, ...], bool],
        ] = {}
        self._queries: dict[
            tuple[int, str, bool], tuple[MaintenanceQuery, ...]
        ] = {}
        self._query_costs: dict[tuple, float] = {}
        self._descendants: dict[int, frozenset[int]] = {}

    # -- Fig. 4 step 1 ------------------------------------------------------------

    def precompute(
        self, candidates: Iterable[int], txns: Sequence[TransactionType]
    ) -> None:
        """Precompute M[N, j] and the affected bitmap for every candidate
        node and transaction type (idempotent — repeated calls for
        sub-searches only fill in what is missing)."""
        for txn in txns:
            self.affected_set(txn)
            for gid in candidates:
                self.update_cost(gid, txn)

    def affected_set(self, txn: TransactionType) -> frozenset[int]:
        """Canonical ids of every affected equivalence node for ``txn``."""
        cached = self._affected.get(txn.name)
        if cached is None:
            cached = frozenset(
                group.id
                for group in self.memo.groups()
                if self.estimator.affected(group.id, txn)
            )
            self._affected[txn.name] = cached
        return cached

    def affected_targets(
        self, marking: frozenset[int], txn: TransactionType
    ) -> list[int]:
        """The affected members of a marking, in the marking's iteration
        order (matching the uncached evaluation exactly)."""
        affected = self.affected_set(txn)
        return [g for g in marking if g in affected]

    def update_cost(self, group_id: int, txn: TransactionType) -> float:
        gid = self.memo.find(group_id)
        key = (gid, txn.name)
        cached = self._update_costs.get(key)
        if cached is None:
            cached = self.cost_model.update_cost(gid, txn)
            self._update_costs[key] = cached
            self.stats.update_costs_computed += 1
        return cached

    # -- tracks -------------------------------------------------------------------

    def tracks(
        self,
        targets: frozenset[int],
        txn: TransactionType,
        limit: int | None = None,
    ) -> tuple[tuple[UpdateTrack, ...], bool]:
        """All update tracks for the affected marked set, plus a truncation
        flag when ``limit`` cut the enumeration short."""
        key = (targets, txn.name, limit)
        cached = self._tracks.get(key)
        if cached is not None:
            self.stats.track_hits += 1
            return cached
        self.stats.track_misses += 1
        tracks, truncated = collect_tracks(
            self.memo, targets, txn, self.estimator, limit
        )
        self.stats.tracks_enumerated += len(tracks)
        self._tracks[key] = (tracks, truncated)
        return tracks, truncated

    # -- queries and their costs ----------------------------------------------------

    def queries(
        self, op: OperationNode, txn: TransactionType, own_marked: bool
    ) -> tuple[MaintenanceQuery, ...]:
        """The maintenance queries ``op`` poses for ``txn``.

        ``derive_queries`` consults the marking only to test whether the
        op's own group is materialized (self-maintainable aggregates), so
        ``own_marked`` fully captures the marking-dependence.
        """
        key = (op.id, txn.name, own_marked)
        cached = self._queries.get(key)
        if cached is not None:
            self.stats.query_hits += 1
            return cached
        self.stats.query_misses += 1
        marking = (
            frozenset({self.memo.find(op.group_id)}) if own_marked else frozenset()
        )
        result = tuple(
            derive_queries(
                self.memo,
                op,
                txn,
                marking,
                self.estimator,
                self._allow_self_maintenance,
            )
        )
        self._queries[key] = result
        return result

    def descendants(self, group_id: int) -> frozenset[int]:
        gid = self.memo.find(group_id)
        cached = self._descendants.get(gid)
        if cached is None:
            cached = frozenset(self.memo.descendants(gid))
            self._descendants[gid] = cached
        return cached

    def total_query_cost(
        self,
        queries: Sequence[MaintenanceQuery],
        marking: frozenset[int],
        txn: TransactionType,
    ) -> float:
        """Multi-query-optimized batch cost, with per-query costs cached
        under the marking restricted to each target's descendants."""
        if not self._local_costs:
            return self.cost_model.total_query_cost(queries, marking, txn)
        mqo = getattr(getattr(self.cost_model, "config", None), "mqo", True)
        if not mqo:
            return sum(self._query_cost(q, marking, txn) for q in queries)
        best: dict[tuple, float] = {}
        for query in queries:
            cost = self._query_cost(query, marking, txn)
            key = query.dedup_key()
            best[key] = max(best.get(key, 0.0), cost)
        return sum(best.values())

    def _query_cost(
        self, query: MaintenanceQuery, marking: frozenset[int], txn: TransactionType
    ) -> float:
        restricted = marking & self.descendants(query.target)
        key = (query.target, query.key_columns, query.n_keys, restricted)
        cached = self._query_costs.get(key)
        if cached is not None:
            self.stats.cost_hits += 1
            return cached
        self.stats.cost_misses += 1
        cost = self.cost_model.query_cost(query, marking, txn)
        self._query_costs[key] = cost
        return cost
