"""Result types for view-set optimization."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.core.memoize import OptimizerStats
from repro.core.tracks import UpdateTrack
from repro.dag.memo import Memo


@dataclass
class TxnPlan:
    """The chosen maintenance plan for one transaction type.

    ``tracks_truncated`` records that the track enumeration hit its limit
    while costing this transaction — the chosen track is the best of the
    tracks *seen*, not necessarily the best overall.
    """

    txn_name: str
    query_cost: float
    update_cost: float
    track: UpdateTrack
    tracks_truncated: bool = False

    @property
    def total(self) -> float:
        return self.query_cost + self.update_cost


@dataclass
class ViewSetEvaluation:
    """Costs of one candidate view set (marking) across transaction types."""

    marking: frozenset[int]
    per_txn: dict[str, TxnPlan] = field(default_factory=dict)
    weighted_cost: float = 0.0

    @property
    def tracks_truncated(self) -> bool:
        """True when any transaction's track enumeration was cut short."""
        return any(plan.tracks_truncated for plan in self.per_txn.values())

    def describe(self, memo: Memo, root: int | None = None) -> str:
        extra = sorted(
            gid for gid in self.marking if root is None or memo.find(gid) != memo.find(root)
        )
        names = ", ".join(f"N{g}" for g in extra) or "∅"
        return f"{{{names}}}: weighted {self.weighted_cost:.2f}"


@dataclass
class OptimizationResult:
    """Outcome of a view-set search."""

    best: ViewSetEvaluation
    evaluated: list[ViewSetEvaluation]
    root: int
    candidates: tuple[int, ...]
    view_sets_considered: int = 0
    view_sets_pruned: int = 0
    stats: OptimizerStats | None = None

    @property
    def best_marking(self) -> frozenset[int]:
        return self.best.marking

    @property
    def tracks_truncated(self) -> bool:
        """True when any evaluated view set hit the track limit — the
        reported optimum may then be an artifact of the truncation."""
        return any(ev.tracks_truncated for ev in self.evaluated)

    def additional_views(self) -> frozenset[int]:
        """The marked nodes other than the root — the paper's V \\ {V}."""
        return frozenset(g for g in self.best.marking if g != self.root)

    def evaluation_for(self, marking: Mapping[int, object] | frozenset[int]) -> ViewSetEvaluation:
        marking = frozenset(marking)
        for ev in self.evaluated:
            if ev.marking == marking:
                return ev
        raise KeyError(f"view set {sorted(marking)} was not evaluated")
