"""Algorithm OptimalViewSet (paper Figure 4): exhaustive, memoized search.

Given the expression DAG ``D_V`` of a view V, transaction types with
weights, and a (monotonic) cost model:

1. precompute the update cost ``M[N, j]`` of every equivalence node N for
   every transaction type T_j (marking-independent);
2. for every candidate view set V (every subset of the non-leaf equivalence
   nodes that contains V), and every transaction type, find the update
   track with minimum accumulated query cost (multi-query-optimized), and
   add the members' update costs;
3. pick the view set minimizing the weighted average cost.

The optional *shielding* filter applies Theorem 4.1: any view set marking
an articulation node A whose restriction below A differs from the locally
optimal set Opt(A) cannot be globally optimal and is skipped without
costing (see :mod:`repro.core.articulation`).
"""

from __future__ import annotations

import itertools
import math
from typing import Iterable, Sequence

from repro.cost.estimates import DagEstimator
from repro.cost.model import CostModel
from repro.core.plan import OptimizationResult, TxnPlan, ViewSetEvaluation
from repro.core.tracks import enumerate_tracks, track_ops
from repro.dag.builder import ViewDag
from repro.dag.memo import Memo
from repro.dag.queries import derive_queries
from repro.workload.transactions import TransactionType

DEFAULT_MAX_CANDIDATES = 16


class SearchSpaceError(Exception):
    """Raised when an exhaustive search would be infeasibly large."""


def evaluate_view_set(
    memo: Memo,
    marking: frozenset[int],
    txns: Sequence[TransactionType],
    cost_model: CostModel,
    estimator: DagEstimator,
    track_limit: int | None = None,
) -> ViewSetEvaluation:
    """Cost a single view set: cheapest update track per transaction type
    plus the members' update costs, weighted across types."""
    marking = frozenset(memo.find(g) for g in marking)
    allow_self_maintenance = getattr(
        getattr(cost_model, "config", None), "self_maintenance", True
    )
    evaluation = ViewSetEvaluation(marking)
    total_weight = sum(t.weight for t in txns)
    weighted = 0.0
    for txn in txns:
        affected_marked = [g for g in marking if estimator.affected(g, txn)]
        update_cost = sum(cost_model.update_cost(g, txn) for g in affected_marked)
        best_query = math.inf
        best_track = {}
        for track in enumerate_tracks(memo, affected_marked, txn, estimator, track_limit):
            queries = []
            for op in track_ops(track):
                queries.extend(
                    derive_queries(
                        memo, op, txn, marking, estimator, allow_self_maintenance
                    )
                )
            cost = cost_model.total_query_cost(queries, marking, txn)
            if cost < best_query:
                best_query = cost
                best_track = track
        if not affected_marked:
            best_query = 0.0
        plan = TxnPlan(txn.name, best_query, update_cost, best_track)
        evaluation.per_txn[txn.name] = plan
        weighted += plan.total * txn.weight
    evaluation.weighted_cost = weighted / total_weight if total_weight else 0.0
    return evaluation


def _candidate_subsets(
    candidates: Sequence[int], required: frozenset[int]
) -> Iterable[frozenset[int]]:
    optional = [c for c in candidates if c not in required]
    for r in range(len(optional) + 1):
        for combo in itertools.combinations(optional, r):
            yield required | frozenset(combo)


def optimal_view_set(
    dag: ViewDag,
    txns: Sequence[TransactionType],
    cost_model: CostModel,
    estimator: DagEstimator,
    candidates: Sequence[int] | None = None,
    required: Iterable[int] | None = None,
    shielding: bool = False,
    max_candidates: int = DEFAULT_MAX_CANDIDATES,
    track_limit: int | None = None,
) -> OptimizationResult:
    """Exhaustive Algorithm OptimalViewSet over the DAG's view sets.

    ``required`` defaults to the DAG's root(s) — the paper always
    materializes the view being maintained. ``candidates`` defaults to all
    non-leaf equivalence nodes.
    """
    memo = dag.memo
    roots = frozenset(memo.find(r) for r in dag.roots.values())
    if required is None:
        required = roots
    required = frozenset(memo.find(g) for g in required)
    if candidates is None:
        candidates = dag.candidate_groups()
    candidates = [memo.find(c) for c in candidates]
    optional = [c for c in candidates if c not in required]
    if len(optional) > max_candidates:
        raise SearchSpaceError(
            f"{len(optional)} optional candidates would require "
            f"2^{len(optional)} view sets; restrict candidates or use heuristics"
        )

    local_optima: dict[int, frozenset[int]] = {}
    articulation: frozenset[int] = frozenset()
    if shielding:
        from repro.core.articulation import articulation_groups, local_optimum

        root = next(iter(roots))
        articulation = articulation_groups(memo, root)
        for node in articulation:
            if node in required:
                continue
            local_optima[node] = local_optimum(
                dag, node, txns, cost_model, estimator, track_limit=track_limit
            )

    evaluated: list[ViewSetEvaluation] = []
    best: ViewSetEvaluation | None = None
    considered = pruned = 0
    for marking in _candidate_subsets(candidates, required):
        considered += 1
        if shielding and _violates_shielding(memo, marking, local_optima, estimator):
            pruned += 1
            continue
        evaluation = evaluate_view_set(
            memo, marking, txns, cost_model, estimator, track_limit
        )
        evaluated.append(evaluation)
        if best is None or evaluation.weighted_cost < best.weighted_cost:
            best = evaluation
    assert best is not None
    root = next(iter(roots))
    return OptimizationResult(
        best=best,
        evaluated=evaluated,
        root=root,
        candidates=tuple(candidates),
        view_sets_considered=considered,
        view_sets_pruned=pruned,
    )


def _violates_shielding(
    memo: Memo,
    marking: frozenset[int],
    local_optima: dict[int, frozenset[int]],
    estimator: DagEstimator,
) -> bool:
    """Theorem 4.1 filter: a marked articulation node's sub-view-set must
    equal its local optimum."""
    for node, opt in local_optima.items():
        if node not in marking:
            continue
        below = memo.descendants(node)
        restricted = frozenset(
            g for g in marking if g in below and not memo.group(g).is_leaf
        )
        if restricted != opt:
            return True
    return False
