"""Algorithm OptimalViewSet (paper Figure 4): exhaustive, memoized search.

Given the expression DAG ``D_V`` of a view V, transaction types with
weights, and a (monotonic) cost model:

1. precompute the update cost ``M[N, j]`` of every equivalence node N for
   every transaction type T_j (marking-independent) — done once per search
   in a shared :class:`~repro.core.memoize.SearchCache`, exactly as the
   paper's step 1 prescribes;
2. for every candidate view set V (every subset of the non-leaf equivalence
   nodes that contains V), and every transaction type, find the update
   track with minimum accumulated query cost (multi-query-optimized), and
   add the members' update costs;
3. pick the view set minimizing the weighted average cost, breaking ties
   deterministically toward the smaller (then lexicographically smaller)
   marking — equal-cost solutions prefer less space.

The optional *shielding* filter applies Theorem 4.1: any view set marking
an articulation node A whose restriction below A differs from the locally
optimal set Opt(A) cannot be globally optimal and is skipped without
costing (see :mod:`repro.core.articulation`).
"""

from __future__ import annotations

import itertools
import math
import time
from typing import Iterable, Sequence

from repro.cost.estimates import DagEstimator
from repro.cost.model import CostModel
from repro.core.memoize import SearchCache
from repro.core.plan import OptimizationResult, TxnPlan, ViewSetEvaluation
from repro.core.tracks import track_ops
from repro.dag.builder import ViewDag
from repro.dag.memo import Memo
from repro.dag.queries import MaintenanceQuery
from repro.obs.trace import NULL_TRACER
from repro.workload.transactions import TransactionType

DEFAULT_MAX_CANDIDATES = 16


class SearchSpaceError(Exception):
    """Raised when an exhaustive search would be infeasibly large."""


def evaluate_view_set(
    memo: Memo,
    marking: frozenset[int],
    txns: Sequence[TransactionType],
    cost_model: CostModel,
    estimator: DagEstimator,
    track_limit: int | None = None,
    cache: SearchCache | None = None,
) -> ViewSetEvaluation:
    """Cost a single view set: cheapest update track per transaction type
    plus the members' update costs, weighted across types.

    ``cache`` shares per-layer memoization across many view sets (see
    :mod:`repro.core.memoize`); without one, a transient cache is used and
    the evaluation is self-contained.
    """
    if cache is None:
        cache = SearchCache(memo, cost_model, estimator)
    marking = frozenset(memo.find(g) for g in marking)
    evaluation = ViewSetEvaluation(marking)
    total_weight = sum(t.weight for t in txns)
    weighted = 0.0
    for txn in txns:
        affected_marked = cache.affected_targets(marking, txn)
        update_cost = sum(cache.update_cost(g, txn) for g in affected_marked)
        tracks, truncated = cache.tracks(
            frozenset(affected_marked), txn, track_limit
        )
        best_query = math.inf
        best_track = {}
        for track in tracks:
            queries: list[MaintenanceQuery] = []
            for op in track_ops(track):
                queries.extend(
                    cache.queries(op, txn, memo.find(op.group_id) in marking)
                )
            cost = cache.total_query_cost(queries, marking, txn)
            if cost < best_query:
                best_query = cost
                best_track = track
        if not affected_marked:
            best_query = 0.0
        plan = TxnPlan(
            txn.name,
            best_query,
            update_cost,
            dict(best_track),
            tracks_truncated=truncated,
        )
        evaluation.per_txn[txn.name] = plan
        weighted += plan.total * txn.weight
    evaluation.weighted_cost = weighted / total_weight if total_weight else 0.0
    cache.stats.view_sets_costed += 1
    return evaluation


def _candidate_subsets(
    candidates: Sequence[int], required: frozenset[int]
) -> Iterable[frozenset[int]]:
    optional = [c for c in candidates if c not in required]
    for r in range(len(optional) + 1):
        for combo in itertools.combinations(optional, r):
            yield required | frozenset(combo)


def _evaluation_key(evaluation: ViewSetEvaluation) -> tuple:
    """Deterministic total order on evaluations: cheapest first; among
    equal costs prefer the smaller view set (the space-for-time trade the
    paper optimizes), then the lexicographically smallest marking."""
    return (
        evaluation.weighted_cost,
        len(evaluation.marking),
        tuple(sorted(evaluation.marking)),
    )


def optimal_view_set(
    dag: ViewDag,
    txns: Sequence[TransactionType],
    cost_model: CostModel,
    estimator: DagEstimator,
    candidates: Sequence[int] | None = None,
    required: Iterable[int] | None = None,
    shielding: bool = False,
    max_candidates: int = DEFAULT_MAX_CANDIDATES,
    track_limit: int | None = None,
    cache: SearchCache | None = None,
    use_cache: bool = True,
    tracer=None,
) -> OptimizationResult:
    """Exhaustive Algorithm OptimalViewSet over the DAG's view sets.

    ``required`` defaults to the DAG's root(s) — the paper always
    materializes the view being maintained. ``candidates`` defaults to all
    non-leaf equivalence nodes. Pass an existing ``cache`` to share
    memoization with an enclosing search; ``use_cache=False`` disables
    cross-view-set memoization entirely (each marking is costed from
    scratch — the seed behaviour, kept for verification and benchmarking).
    ``tracer`` records one span per search phase (precompute / shielding /
    search), mirroring the wall-clock phases in ``OptimizerStats``.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    memo = dag.memo
    roots = frozenset(memo.find(r) for r in dag.roots.values())
    if required is None:
        required = roots
    required = frozenset(memo.find(g) for g in required)
    if candidates is None:
        candidates = dag.candidate_groups()
    candidates = [memo.find(c) for c in candidates]
    optional = [c for c in candidates if c not in required]
    if len(optional) > max_candidates:
        raise SearchSpaceError(
            f"{len(optional)} optional candidates would require "
            f"2^{len(optional)} view sets; restrict candidates or use heuristics"
        )

    if cache is None and use_cache:
        cache = SearchCache(memo, cost_model, estimator)
    if cache is not None:
        started = time.perf_counter()
        with tracer.span("optimize.precompute", candidates=len(candidates)):
            cache.precompute(candidates, txns)  # Fig. 4 step 1
        cache.stats.add_phase("precompute", time.perf_counter() - started)

    # node -> (non-leaf descendants, local optimum), both canonical.
    shield: dict[int, tuple[frozenset[int], frozenset[int]]] = {}
    if shielding:
        from repro.core.articulation import articulation_groups, local_optimum

        started = time.perf_counter()
        with tracer.span("optimize.shielding"):
            for node in articulation_groups(memo, roots):
                if node in required:
                    continue
                opt = local_optimum(
                    dag,
                    node,
                    txns,
                    cost_model,
                    estimator,
                    track_limit=track_limit,
                    cache=cache,
                )
                below = frozenset(
                    g
                    for g in memo.descendants(node)
                    if not memo.group(g).is_leaf
                )
                shield[node] = (below, frozenset(memo.find(g) for g in opt))
        if cache is not None:
            cache.stats.add_phase("shielding", time.perf_counter() - started)

    started = time.perf_counter()
    evaluated: list[ViewSetEvaluation] = []
    best: ViewSetEvaluation | None = None
    best_key: tuple | None = None
    considered = pruned = 0
    with tracer.span("optimize.search") as search_span:
        for marking in _candidate_subsets(candidates, required):
            considered += 1
            if shield and _violates_shielding(memo, marking, shield):
                pruned += 1
                continue
            evaluation = evaluate_view_set(
                memo, marking, txns, cost_model, estimator, track_limit, cache=cache
            )
            evaluated.append(evaluation)
            key = _evaluation_key(evaluation)
            if best_key is None or key < best_key:
                best, best_key = evaluation, key
        search_span.annotate(view_sets=considered, pruned=pruned)
    assert best is not None
    if cache is not None:
        cache.stats.add_phase("search", time.perf_counter() - started)
        from repro.obs.metrics import get_metrics

        get_metrics().observe_cache(
            "search", cache.stats.cache_hits, cache.stats.cache_misses
        )
    return OptimizationResult(
        best=best,
        evaluated=evaluated,
        root=min(roots),
        candidates=tuple(candidates),
        view_sets_considered=considered,
        view_sets_pruned=pruned,
        stats=cache.stats if cache is not None else None,
    )


def _violates_shielding(
    memo: Memo,
    marking: frozenset[int],
    shield: dict[int, tuple[frozenset[int], frozenset[int]]],
) -> bool:
    """Theorem 4.1 filter: a marked articulation node's sub-view-set must
    equal its local optimum.

    ``marking`` must be canonical (the search builds it from canonicalized
    candidates); ``shield`` carries canonical descendant sets and local
    optima, so both sides of the comparison live in the same id space even
    after memo merges.
    """
    for node, (below, opt) in shield.items():
        if node not in marking:
            continue
        restricted = frozenset(g for g in marking if g in below)
        if restricted != opt:
            return True
    return False
