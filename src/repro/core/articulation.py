"""Articulation nodes and the Shielding Principle (paper Section 4).

Theorem 4.1: if V1 ∈ Opt(V) and V1's equivalence node is an articulation
node of D_V (viewed as an undirected graph), then
Opt(V1) = Opt(V) ∩ E_V1 — the sub-DAG below an articulation node can be
optimized locally. The optimizer uses this as a sound pruning filter: any
global view set that marks an articulation node but disagrees with its
local optimum below it is discarded without being costed.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.cost.estimates import DagEstimator
from repro.cost.model import CostModel
from repro.core.memoize import SearchCache
from repro.dag.builder import ViewDag
from repro.dag.memo import Memo
from repro.workload.transactions import TransactionType

# Vertices of the undirected view of the DAG: ('g', group_id) and ('o', op_id);
# multi-root DAGs add one virtual vertex ('v', -1) joining the roots.
_Vertex = tuple[str, int]


def _canonical_roots(memo: Memo, roots: int | Iterable[int]) -> frozenset[int]:
    if isinstance(roots, int):
        roots = (roots,)
    return frozenset(memo.find(r) for r in roots)


def _undirected_adjacency(
    memo: Memo, roots: int | Iterable[int]
) -> dict[_Vertex, list[_Vertex]]:
    adj: dict[_Vertex, list[_Vertex]] = {}
    roots = _canonical_roots(memo, roots)
    reachable: set[int] = set()
    for root in roots:
        reachable |= memo.descendants(root)

    def add_edge(a: _Vertex, b: _Vertex) -> None:
        adj.setdefault(a, []).append(b)
        adj.setdefault(b, []).append(a)

    for gid in reachable:
        group = memo.group(gid)
        adj.setdefault(("g", gid), [])
        for op in group.ops:
            add_edge(("g", gid), ("o", op.id))
            for cid in op.child_ids:
                add_edge(("o", op.id), ("g", memo.find(cid)))
    if len(roots) > 1:
        # A virtual super-root ties the roots together: an articulation
        # node of the augmented graph separates its sub-DAG from *every*
        # root, which is what Theorem 4.1 needs in the Section 6
        # multi-view setting (a node cut off from only one root is not a
        # valid shield — another view may reach below it directly).
        for root in roots:
            add_edge(("v", -1), ("g", root))
    return adj


def articulation_vertices(
    memo: Memo, roots: int | Iterable[int]
) -> set[_Vertex]:
    """Standard iterative Tarjan/Hopcroft articulation-point computation."""
    adj = _undirected_adjacency(memo, roots)
    disc: dict[_Vertex, int] = {}
    low: dict[_Vertex, int] = {}
    parent: dict[_Vertex, _Vertex | None] = {}
    points: set[_Vertex] = set()
    timer = 0

    for start in adj:
        if start in disc:
            continue
        parent[start] = None
        stack: list[tuple[_Vertex, int]] = [(start, 0)]
        children_of_root = 0
        while stack:
            vertex, idx = stack[-1]
            if idx == 0:
                disc[vertex] = low[vertex] = timer
                timer += 1
            if idx < len(adj[vertex]):
                stack[-1] = (vertex, idx + 1)
                neighbor = adj[vertex][idx]
                if neighbor not in disc:
                    parent[neighbor] = vertex
                    if vertex == start:
                        children_of_root += 1
                    stack.append((neighbor, 0))
                elif neighbor != parent[vertex]:
                    low[vertex] = min(low[vertex], disc[neighbor])
            else:
                stack.pop()
                p = parent[vertex]
                if p is not None:
                    low[p] = min(low[p], low[vertex])
                    if p != start and low[vertex] >= disc[p]:
                        points.add(p)
        if children_of_root > 1:
            points.add(start)
    return points


def articulation_groups(memo: Memo, roots: int | Iterable[int]) -> frozenset[int]:
    """Equivalence nodes that are articulation points of D_V, excluding the
    root(s) and the leaves (paper: articulation *equivalence* nodes).

    ``roots`` may be a single root group id or, for the Section 6
    multi-view DAGs, every view root; candidates are then articulation
    points of the whole multi-rooted graph."""
    roots = _canonical_roots(memo, roots)
    points = articulation_vertices(memo, roots)
    result = set()
    for kind, ident in points:
        if kind != "g":
            continue
        if ident in roots or memo.group(ident).is_leaf:
            continue
        result.add(ident)
    return frozenset(result)


def local_optimum(
    dag: ViewDag,
    node: int,
    txns: Sequence[TransactionType],
    cost_model: CostModel,
    estimator: DagEstimator,
    track_limit: int | None = None,
    cache: "SearchCache | None" = None,
) -> frozenset[int]:
    """Opt(V1): the optimal view set for maintaining the sub-view at
    ``node``, over the sub-DAG D_V1 (node always marked).

    Returns canonical group ids. ``cache`` shares the enclosing search's
    memoization — the sub-search's update costs, tracks, and query costs
    all live in the same (memo, estimator, cost model) space."""
    from repro.core.optimizer import optimal_view_set
    from repro.dag.builder import ViewDag as _ViewDag

    memo = dag.memo
    node = memo.find(node)
    below = memo.descendants(node)
    candidates = [g for g in below if not memo.group(g).is_leaf]
    relevant = [t for t in txns if estimator.affected(node, t)]
    if not relevant:
        return frozenset({node})
    sub = _ViewDag(memo, {"V1": node})
    result = optimal_view_set(
        sub,
        relevant,
        cost_model,
        estimator,
        candidates=candidates,
        required=[node],
        shielding=False,
        track_limit=track_limit,
        cache=cache,
    )
    return frozenset(memo.find(g) for g in result.best_marking)
