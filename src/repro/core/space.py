"""Space-budgeted view-set selection — quantifying the paper's trade.

The paper's title is the trade-off; its algorithms optimize time assuming
space is free ("Obviously there is also a time cost for maintaining these
additional views", §1 — space cost is acknowledged but not budgeted). This
module makes the trade explicit: every materialized view occupies pages
(one page per tuple plus its index pages, matching the storage model), and
the optimizer can be asked for the best view set whose *additional* space
fits a budget.

Two searches are provided:

* :func:`optimal_view_set_within_budget` — the exhaustive Algorithm
  OptimalViewSet restricted to feasible view sets;
* :func:`greedy_view_set_within_budget` — benefit-per-page greedy
  hill-climbing, the classic knapsack-style heuristic;

plus :func:`space_time_curve`, which sweeps budgets and reports the
achievable maintenance cost at each — the space-for-time curve itself.
"""

from __future__ import annotations

from typing import Sequence

from repro.cost.estimates import DagEstimator
from repro.cost.model import CostModel
from repro.cost.page_io import PageIOCostModel
from repro.core.memoize import SearchCache
from repro.core.optimizer import (
    _evaluation_key,
    evaluate_view_set,
    optimal_view_set,
)
from repro.core.plan import OptimizationResult, ViewSetEvaluation
from repro.dag.builder import ViewDag
from repro.workload.transactions import TransactionType


def view_space_pages(
    memo, gid: int, estimator: DagEstimator, cost_model: CostModel
) -> float:
    """Estimated pages a materialized node occupies: one page per tuple
    (unclustered, as in the paper's storage model) plus its hash-index
    pages (one per distinct key of the index columns)."""
    gid = memo.find(gid)
    info = estimator.info(gid)
    pages = info.rows
    if isinstance(cost_model, PageIOCostModel):
        index_cols = cost_model.index_columns(gid)
        if index_cols:
            pages += info.distinct_of(sorted(index_cols))
    return pages


def marking_space(
    dag: ViewDag,
    marking: frozenset[int],
    estimator: DagEstimator,
    cost_model: CostModel,
) -> float:
    """Additional space of a view set: the auxiliary views only (the root
    view is materialized regardless; base relations are already stored)."""
    memo = dag.memo
    roots = {memo.find(r) for r in dag.roots.values()}
    total = 0.0
    for gid in marking:
        if gid in roots or memo.group(gid).is_leaf:
            continue
        total += view_space_pages(memo, gid, estimator, cost_model)
    return total


def optimal_view_set_within_budget(
    dag: ViewDag,
    txns: Sequence[TransactionType],
    cost_model: CostModel,
    estimator: DagEstimator,
    budget: float,
    **kwargs,
) -> OptimizationResult:
    """Exhaustive search over view sets whose additional space ≤ budget.

    Implemented as the standard search with infeasible markings discarded
    after costing is skipped (they are filtered before evaluation via the
    candidate filter trick: every optional candidate larger than the budget
    can never appear)."""
    memo = dag.memo
    roots = {memo.find(r) for r in dag.roots.values()}
    candidates = kwargs.pop("candidates", None) or dag.candidate_groups()
    affordable = [
        memo.find(c)
        for c in candidates
        if memo.find(c) in roots
        or view_space_pages(memo, c, estimator, cost_model) <= budget
    ]
    result = optimal_view_set(
        dag, txns, cost_model, estimator, candidates=affordable, **kwargs
    )
    feasible = [
        ev
        for ev in result.evaluated
        if marking_space(dag, ev.marking, estimator, cost_model) <= budget
    ]
    if not feasible:
        raise ValueError("no feasible view set within the budget")
    best = min(feasible, key=_evaluation_key)
    return OptimizationResult(
        best=best,
        evaluated=feasible,
        root=result.root,
        candidates=result.candidates,
        view_sets_considered=result.view_sets_considered,
        view_sets_pruned=result.view_sets_considered - len(feasible),
        stats=result.stats,
    )


def greedy_view_set_within_budget(
    dag: ViewDag,
    txns: Sequence[TransactionType],
    cost_model: CostModel,
    estimator: DagEstimator,
    budget: float,
    candidates: Sequence[int] | None = None,
    track_limit: int | None = None,
) -> OptimizationResult:
    """Benefit-per-page greedy: repeatedly add the affordable candidate
    with the best (cost reduction / space) ratio."""
    memo = dag.memo
    roots = frozenset(memo.find(r) for r in dag.roots.values())
    if candidates is None:
        candidates = dag.candidate_groups()
    cache = SearchCache(memo, cost_model, estimator)
    cache.precompute([memo.find(c) for c in candidates], txns)
    remaining = {memo.find(c) for c in candidates} - roots
    current = evaluate_view_set(
        memo, roots, txns, cost_model, estimator, track_limit, cache=cache
    )
    evaluated = [current]
    spent = 0.0
    considered = 1
    improved = True
    while improved and remaining:
        improved = False
        best_pick: tuple[float, int, ViewSetEvaluation, float] | None = None
        for candidate in sorted(remaining):
            space = view_space_pages(memo, candidate, estimator, cost_model)
            if spent + space > budget:
                continue
            trial = evaluate_view_set(
                memo,
                current.marking | {candidate},
                txns,
                cost_model,
                estimator,
                track_limit,
                cache=cache,
            )
            considered += 1
            evaluated.append(trial)
            gain = current.weighted_cost - trial.weighted_cost
            if gain <= 1e-9:
                continue
            ratio = gain / max(space, 1.0)
            if best_pick is None or ratio > best_pick[0]:
                best_pick = (ratio, candidate, trial, space)
        if best_pick is not None:
            _, candidate, trial, space = best_pick
            current = trial
            spent += space
            remaining.discard(candidate)
            improved = True
    return OptimizationResult(
        best=current,
        evaluated=evaluated,
        root=min(roots),
        candidates=tuple(sorted({memo.find(c) for c in candidates})),
        view_sets_considered=considered,
        stats=cache.stats,
    )


def space_time_curve(
    dag: ViewDag,
    txns: Sequence[TransactionType],
    cost_model: CostModel,
    estimator: DagEstimator,
    budgets: Sequence[float],
    exhaustive: bool = True,
    **kwargs,
) -> list[dict[str, float]]:
    """The space-for-time curve: for each budget, the best achievable
    weighted maintenance cost and the space actually used."""
    curve = []
    for budget in budgets:
        if exhaustive:
            result = optimal_view_set_within_budget(
                dag, txns, cost_model, estimator, budget, **kwargs
            )
        else:
            result = greedy_view_set_within_budget(
                dag, txns, cost_model, estimator, budget, **kwargs
            )
        used = marking_space(dag, result.best_marking, estimator, cost_model)
        curve.append(
            {
                "budget": float(budget),
                "cost": result.best.weighted_cost,
                "space_used": used,
                "views": float(
                    len(result.best_marking)
                    - len({dag.memo.find(r) for r in dag.roots.values()})
                ),
            }
        )
    return curve
