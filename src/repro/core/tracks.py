"""Subdags and update tracks (paper Definitions 3.2 and 3.3).

A *subdag* for a view set V picks exactly one operation-node child for every
equivalence node it needs; an *update track* for a transaction type is the
affected part of a subdag — the minimal ways of propagating updates from
the updated relations to every affected materialized view.

Enumeration works top-down from the affected marked nodes: each needed
affected group chooses one affected operation child, and the choice is
shared wherever the group appears (that is what makes common subexpressions
pay off once instead of twice).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.cost.estimates import DagEstimator
from repro.dag.memo import Memo
from repro.dag.nodes import OperationNode
from repro.workload.transactions import TransactionType

# An update track: affected group id -> the operation node computing its delta.
UpdateTrack = dict[int, OperationNode]


def affected_ops(
    memo: Memo, group_id: int, txn: TransactionType, estimator: DagEstimator
) -> list[OperationNode]:
    """Operation children of a group that receive a delta for ``txn``."""
    group = memo.group(group_id)
    if group.is_leaf:
        return []
    return [op for op in group.ops if estimator.op_affected(op, txn)]


def enumerate_tracks(
    memo: Memo,
    targets: Iterable[int],
    txn: TransactionType,
    estimator: DagEstimator,
    limit: int | None = None,
) -> Iterator[UpdateTrack]:
    """All update tracks delivering ``txn``'s deltas to every target group.

    ``targets`` are the affected materialized equivalence nodes. Tracks are
    yielded as consistent assignments over the needed closure; duplicates
    cannot arise because choices are made in a fixed group order.
    """
    targets = sorted(
        {memo.find(t) for t in targets if estimator.affected(t, txn)}
    )
    count = 0

    def recurse(
        pending: list[int], assignment: dict[int, OperationNode]
    ) -> Iterator[UpdateTrack]:
        nonlocal count
        while pending:
            gid = pending[-1]
            group = memo.group(gid)
            if group.is_leaf or gid in assignment:
                pending = pending[:-1]
                continue
            options = affected_ops(memo, gid, txn, estimator)
            if not options:
                # Affected group with no affected op cannot happen in a
                # consistent DAG; treat as a dead end defensively.
                return
            for op in options:
                new_children = [
                    memo.find(c)
                    for c in op.child_ids
                    if estimator.affected(c, txn)
                    and not memo.group(memo.find(c)).is_leaf
                    and memo.find(c) not in assignment
                ]
                yield from recurse(
                    pending[:-1] + new_children, {**assignment, gid: op}
                )
            return
        count += 1
        yield dict(assignment)

    for track in recurse(list(targets), {}):
        yield track
        if limit is not None and count >= limit:
            return


def collect_tracks(
    memo: Memo,
    targets: Iterable[int],
    txn: TransactionType,
    estimator: DagEstimator,
    limit: int | None = None,
) -> tuple[tuple[UpdateTrack, ...], bool]:
    """Materialize :func:`enumerate_tracks`, detecting truncation.

    Returns the tracks (at most ``limit``) plus a flag that is True when
    the enumeration had more tracks than the limit allowed — callers must
    surface that, since a truncated enumeration may hide the best track.
    """
    tracks: list[UpdateTrack] = []
    truncated = False
    for track in enumerate_tracks(memo, targets, txn, estimator, limit=None):
        if limit is not None and len(tracks) >= limit:
            truncated = True
            break
        tracks.append(track)
    return tuple(tracks), truncated


def track_ops(track: UpdateTrack) -> list[OperationNode]:
    """The operation nodes of a track in deterministic order."""
    return [track[gid] for gid in sorted(track)]


def describe_track(memo: Memo, track: UpdateTrack) -> str:
    """Human-readable track description (paper style: N1,E1,N2,E2,...)."""
    parts = []
    for gid in sorted(track):
        op = track[gid]
        parts.append(f"N{gid}←E{op.id}")
    return ", ".join(parts)
