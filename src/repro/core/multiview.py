"""Maintaining a set of materialized views (paper Section 6).

"The only change will be that the expression DAG will have to include
multiple view definitions, and may therefore have multiple roots, and every
view that must be materialized will be marked in the expression DAG. Other
details of our algorithms remain unchanged." — this module is exactly that
thin layer: build one shared DAG for all the views (common subexpressions
merge automatically in the memo) and run the same optimizer with every root
required.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.algebra.operators import RelExpr
from repro.algebra.rules import Rule
from repro.cost.estimates import DagEstimator
from repro.cost.model import CostConfig, CostModel
from repro.cost.page_io import PageIOCostModel
from repro.core.optimizer import OptimizationResult, optimal_view_set
from repro.dag.builder import ViewDag, build_multi_dag
from repro.storage.statistics import Catalog
from repro.workload.transactions import TransactionType


class MultiViewProblem:
    """Optimization of auxiliary materializations for several views."""

    def __init__(
        self,
        views: Mapping[str, RelExpr],
        catalog: Catalog,
        txns: Sequence[TransactionType],
        rules: Sequence[Rule] | None = None,
        cost_model: CostModel | None = None,
        charge_root_updates: bool = True,
    ) -> None:
        self.views = dict(views)
        self.txns = list(txns)
        self.dag: ViewDag = build_multi_dag(self.views, rules)
        self.estimator = DagEstimator(self.dag.memo, catalog)
        if cost_model is None:
            cost_model = PageIOCostModel(
                self.dag.memo,
                self.estimator,
                CostConfig(charge_root_update=charge_root_updates),
            )
        self.cost_model = cost_model

    @property
    def roots(self) -> dict[str, int]:
        return {name: self.dag.root_of(name) for name in self.views}

    def shared_groups(self) -> frozenset[int]:
        """Equivalence nodes reachable from more than one view root — the
        common subexpressions that make joint optimization pay off."""
        memo = self.dag.memo
        counts: dict[int, int] = {}
        for root in self.roots.values():
            for gid in memo.descendants(root):
                counts[gid] = counts.get(gid, 0) + 1
        return frozenset(g for g, c in counts.items() if c > 1)

    def optimize(self, **kwargs) -> OptimizationResult:
        """Run Algorithm OptimalViewSet with every view root required."""
        return optimal_view_set(
            self.dag, self.txns, self.cost_model, self.estimator, **kwargs
        )
