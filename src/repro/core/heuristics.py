"""Heuristic pruning of the search space (paper Section 5).

Three families, exactly as the paper lays out:

* **Single expression tree** — restrict the candidate views to the
  equivalence nodes of one expression tree. The tree is chosen either as
  the cheapest tree for evaluating V as a query, or update-aware: among
  low-cost trees prefer those where relations with high transaction weight
  sit close to the root (Example 3.1's lesson).
* **Single view set** — given a tree, mark every equivalence node that is
  the parent of a join or grouping/aggregation operator (or the child of a
  duplicate elimination), materialize that set if it beats materializing
  nothing.
* **Greedy / approximate costing** — hill-climb: repeatedly add the single
  candidate view that most reduces the weighted cost, keeping one cost per
  step instead of exploring all subsets.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.algebra.operators import DuplicateElim, GroupAggregate, Join
from repro.cost.estimates import DagEstimator
from repro.cost.model import CostModel
from repro.core.memoize import SearchCache
from repro.core.optimizer import (
    _evaluation_key,
    evaluate_view_set,
    optimal_view_set,
)
from repro.core.plan import OptimizationResult, TxnPlan, ViewSetEvaluation
from repro.dag.builder import ViewDag
from repro.dag.memo import Memo
from repro.dag.nodes import OperationNode
from repro.workload.transactions import TransactionType

# A fully-chosen expression tree inside the DAG: group id -> operation node.
TreeChoice = dict[int, OperationNode]


def enumerate_trees(
    memo: Memo, root: int, limit: int = 500
) -> Iterator[TreeChoice]:
    """Enumerate expression trees represented by the DAG (up to ``limit``)."""
    root = memo.find(root)
    produced = 0

    def recurse(pending: list[int], choice: TreeChoice) -> Iterator[TreeChoice]:
        nonlocal produced
        while pending:
            gid = pending[-1]
            if memo.group(gid).is_leaf or gid in choice:
                pending = pending[:-1]
                continue
            for op in memo.group(gid).ops:
                children = [memo.find(c) for c in op.child_ids]
                yield from recurse(pending[:-1] + children, {**choice, gid: op})
            return
        produced += 1
        yield dict(choice)

    for tree in recurse([root], {}):
        yield tree
        if produced >= limit:
            return


def tree_evaluation_cost(memo: Memo, tree: TreeChoice, estimator: DagEstimator) -> float:
    """A simple query-evaluation cost for one tree: read every leaf it
    touches and pay one unit per intermediate result row produced."""
    cost = 0.0
    leaves: set[int] = set()
    for gid, op in tree.items():
        cost += estimator.info(gid).rows
        for cid in op.child_ids:
            cid = memo.find(cid)
            if memo.group(cid).is_leaf:
                leaves.add(cid)
    for leaf in leaves:
        cost += estimator.info(leaf).rows
    return cost


def tree_update_depth_penalty(
    memo: Memo,
    tree: TreeChoice,
    root: int,
    txns: Sequence[TransactionType],
    estimator: DagEstimator,
) -> float:
    """Σ_i f_i × (depth of T_i's updated relations in the tree).

    The paper's second-phase check: prefer trees where heavily-updated
    relations are close to the root, because views containing them have
    high maintenance cost.
    """
    root = memo.find(root)
    depth: dict[int, int] = {root: 0}
    order = [root]
    while order:
        gid = order.pop()
        op = tree.get(gid)
        if op is None:
            continue
        for cid in op.child_ids:
            cid = memo.find(cid)
            if cid not in depth or depth[cid] < depth[gid] + 1:
                depth[cid] = depth[gid] + 1
                order.append(cid)
    penalty = 0.0
    for txn in txns:
        for gid, d in depth.items():
            group = memo.group(gid)
            if group.is_leaf and group.base_relation in txn.updated_relations:
                penalty += txn.weight * d
    return penalty


def select_tree(
    memo: Memo,
    root: int,
    txns: Sequence[TransactionType],
    estimator: DagEstimator,
    update_aware: bool = True,
    limit: int = 500,
) -> TreeChoice:
    """Choose one expression tree: cheapest to evaluate, tie-broken (or,
    when ``update_aware``, lexicographically dominated) by the update-depth
    penalty."""
    best: TreeChoice | None = None
    best_key: tuple[float, float] | None = None
    for tree in enumerate_trees(memo, root, limit):
        cost = tree_evaluation_cost(memo, tree, estimator)
        penalty = tree_update_depth_penalty(memo, tree, root, txns, estimator)
        key = (penalty, cost) if update_aware else (cost, penalty)
        if best_key is None or key < best_key:
            best, best_key = tree, key
    assert best is not None
    return best


def heuristic_single_tree(
    dag: ViewDag,
    txns: Sequence[TransactionType],
    cost_model: CostModel,
    estimator: DagEstimator,
    update_aware: bool = True,
    max_candidates: int = 16,
    cache: SearchCache | None = None,
) -> OptimizationResult:
    """Section 5 heuristic 1: exhaustive search restricted to the
    equivalence nodes of a single expression tree."""
    memo = dag.memo
    root = dag.root
    tree = select_tree(memo, root, txns, estimator, update_aware)
    candidates = sorted(tree)
    return optimal_view_set(
        dag,
        txns,
        cost_model,
        estimator,
        candidates=candidates,
        max_candidates=max_candidates,
        cache=cache,
    )


def structural_marking(memo: Memo, tree: TreeChoice, root: int) -> frozenset[int]:
    """Section 5 heuristic 2's marking rule over a tree: mark every
    equivalence node whose operator is a join or a grouping/aggregation, or
    that feeds a duplicate elimination; never mark selections."""
    marked = {memo.find(root)}
    for gid, op in tree.items():
        if isinstance(op.template, (Join, GroupAggregate)):
            marked.add(memo.find(gid))
        if isinstance(op.template, DuplicateElim):
            marked.add(memo.find(op.child_ids[0]))
    return frozenset(marked)


def heuristic_single_view_set(
    dag: ViewDag,
    txns: Sequence[TransactionType],
    cost_model: CostModel,
    estimator: DagEstimator,
    update_aware: bool = True,
) -> ViewSetEvaluation:
    """Section 5 heuristic 2: one structurally-chosen view set, kept only
    if it beats materializing nothing."""
    memo = dag.memo
    root = dag.root
    tree = select_tree(memo, root, txns, estimator, update_aware)
    marked = structural_marking(memo, tree, root)
    cache = SearchCache(memo, cost_model, estimator)
    candidate = evaluate_view_set(
        memo, marked, txns, cost_model, estimator, cache=cache
    )
    nothing = evaluate_view_set(
        memo, frozenset({root}), txns, cost_model, estimator, cache=cache
    )
    return candidate if candidate.weighted_cost < nothing.weighted_cost else nothing


def approximate_view_set(
    dag: ViewDag,
    txns: Sequence[TransactionType],
    cost_model: CostModel,
    estimator: DagEstimator,
    candidates: Sequence[int] | None = None,
    max_candidates: int = 16,
) -> OptimizationResult:
    """Section 5's *approximate costing*: associate a single cost with each
    query and move query costing out of the innermost loop.

    Every (operation node, transaction) site's queries are derived and
    costed **once** — an unmarked-context cost and a marked-target lookup
    cost — and every view set is then evaluated by pure arithmetic over
    those fixed numbers. The retained marking-dependence is only whether
    the query's *own target* is materialized; the cross-view interactions
    that make exact costing non-local (paper §4.1) are deliberately
    ignored, which is what makes this approximate.
    """
    from repro.core.optimizer import SearchSpaceError, _candidate_subsets

    memo = dag.memo
    roots = frozenset(memo.find(r) for r in dag.roots.values())
    if candidates is None:
        candidates = dag.candidate_groups()
    candidates = [memo.find(c) for c in candidates]
    optional = [c for c in candidates if c not in roots]
    if len(optional) > max_candidates:
        raise SearchSpaceError(f"{len(optional)} candidates; restrict the set")

    # Fig. 4 step 1 via the shared cache (update costs + affected bitmap);
    # per (op, txn, self-maintained?): derived queries with fixed
    # unmarked / marked costs.
    cache = SearchCache(memo, cost_model, estimator)
    cache.precompute(candidates, txns)

    QueryCosts = list[tuple[int, float, float]]  # (target, unmarked, marked)
    site_queries: dict[tuple[int, str, bool], QueryCosts] = {}
    for group in memo.groups():
        for op in group.ops:
            for txn in txns:
                if not estimator.op_affected(op, txn):
                    continue
                for own_marked in (False, True):
                    costs: QueryCosts = []
                    for query in cache.queries(op, txn, own_marked):
                        target = memo.find(query.target)
                        unmarked = cost_model.query_cost(query, frozenset(), txn)
                        marked = cost_model.query_cost(
                            query, frozenset({target}), txn
                        )
                        costs.append((target, unmarked, marked))
                    site_queries[(op.id, txn.name, own_marked)] = costs

    evaluated: list[ViewSetEvaluation] = []
    best: ViewSetEvaluation | None = None
    best_key: tuple | None = None
    considered = 0
    total_weight = sum(t.weight for t in txns)
    for marking in _candidate_subsets(candidates, roots):
        considered += 1
        evaluation = ViewSetEvaluation(marking)
        weighted = 0.0
        for txn in txns:
            targets = cache.affected_targets(marking, txn)
            update = sum(cache.update_cost(g, txn) for g in targets)
            best_track_cost = float("inf")
            best_track = {}
            tracks, truncated = cache.tracks(frozenset(targets), txn)
            for track in tracks:
                cost = 0.0
                for gid, op in track.items():
                    own_marked = gid in marking
                    for target, unmarked, marked_cost in site_queries.get(
                        (op.id, txn.name, own_marked), []
                    ):
                        cost += marked_cost if target in marking else unmarked
                if cost < best_track_cost:
                    best_track_cost = cost
                    best_track = track
            if not targets:
                best_track_cost = 0.0
            plan = TxnPlan(
                txn.name,
                best_track_cost,
                update,
                dict(best_track),
                tracks_truncated=truncated,
            )
            evaluation.per_txn[txn.name] = plan
            weighted += plan.total * txn.weight
        evaluation.weighted_cost = weighted / total_weight if total_weight else 0.0
        evaluated.append(evaluation)
        key = _evaluation_key(evaluation)
        if best_key is None or key < best_key:
            best, best_key = evaluation, key
    assert best is not None
    return OptimizationResult(
        best=best,
        evaluated=evaluated,
        root=min(roots),
        candidates=tuple(candidates),
        view_sets_considered=considered,
        stats=cache.stats,
    )


def greedy_view_set(
    dag: ViewDag,
    txns: Sequence[TransactionType],
    cost_model: CostModel,
    estimator: DagEstimator,
    candidates: Sequence[int] | None = None,
    track_limit: int | None = None,
    cache: SearchCache | None = None,
) -> OptimizationResult:
    """Section 5 heuristic 3: greedy hill-climbing with one cost per step.

    Evaluates O(k²) view sets instead of 2^k: starting from {V}, repeatedly
    add the candidate whose addition lowers the weighted cost the most.
    """
    memo = dag.memo
    root = dag.root
    if candidates is None:
        candidates = dag.candidate_groups()
    if cache is None:
        cache = SearchCache(memo, cost_model, estimator)
    cache.precompute([memo.find(c) for c in candidates], txns)
    remaining = {memo.find(c) for c in candidates} - {root}
    current = evaluate_view_set(
        memo, frozenset({root}), txns, cost_model, estimator, track_limit,
        cache=cache,
    )
    evaluated = [current]
    considered = 1
    improved = True
    while improved and remaining:
        improved = False
        best_addition: tuple[int, ViewSetEvaluation] | None = None
        for candidate in sorted(remaining):
            trial = evaluate_view_set(
                memo,
                current.marking | {candidate},
                txns,
                cost_model,
                estimator,
                track_limit,
                cache=cache,
            )
            considered += 1
            evaluated.append(trial)
            if trial.weighted_cost < current.weighted_cost - 1e-9 and (
                best_addition is None
                or trial.weighted_cost < best_addition[1].weighted_cost
            ):
                best_addition = (candidate, trial)
        if best_addition is not None:
            current = best_addition[1]
            remaining.discard(best_addition[0])
            improved = True
    return OptimizationResult(
        best=current,
        evaluated=evaluated,
        root=root,
        candidates=tuple(sorted({memo.find(c) for c in candidates})),
        view_sets_considered=considered,
        stats=cache.stats,
    )
