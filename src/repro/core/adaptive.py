"""Adaptive re-optimization under workload drift.

The paper's optimizer takes transaction weights as given ("the relative
frequency of the transaction type"). In a running system those frequencies
drift, and the optimal auxiliary view set drifts with them. The
:class:`AdaptiveMaintainer` closes the loop:

* it commits transactions through the transactional
  :class:`~repro.engine.engine.Engine` (over an ordinary
  :class:`~repro.ivm.maintainer.ViewMaintainer`), counting what it sees;
* every ``window`` transactions it re-estimates the weights from the
  observed mix, re-runs the view-set search, and — when the answer changes
  and the projected savings outweigh the (amortized) migration cost —
  re-materializes: new auxiliary views are built, obsolete ones dropped,
  and the per-transaction update tracks replaced.

Migration is charged honestly: building a view costs a scan of the
cheapest way to compute it under the *current* marking (materialized
sources help), dropping a view is free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.memoize import SearchCache
from repro.core.optimizer import optimal_view_set
from repro.core.heuristics import greedy_view_set
from repro.cost.estimates import DagEstimator
from repro.cost.page_io import PageIOCostModel
from repro.dag.builder import ViewDag
from repro.ivm.maintainer import ViewMaintainer
from repro.storage.database import Database
from repro.workload.transactions import Transaction, TransactionType


@dataclass
class Reoptimization:
    """Record of one adaptation step."""

    at_txn: int
    weights: dict[str, float]
    old_marking: frozenset[int]
    new_marking: frozenset[int]
    projected_old_cost: float
    projected_new_cost: float
    migration_cost: float

    @property
    def switched(self) -> bool:
        return self.old_marking != self.new_marking


class AdaptiveMaintainer:
    """Executes transactions and re-optimizes the view set as the observed
    transaction mix drifts."""

    def __init__(
        self,
        db: Database,
        dag: ViewDag,
        txns: Sequence[TransactionType],
        estimator: DagEstimator,
        cost_model: PageIOCostModel,
        window: int = 50,
        amortization_horizon: int | None = None,
        exhaustive: bool = True,
        min_weight: float = 0.05,
        decay: float = 0.5,
    ) -> None:
        self.db = db
        self.dag = dag
        self.base_txns = list(txns)
        self.estimator = estimator
        self.cost_model = cost_model
        self.window = window
        self.horizon = amortization_horizon if amortization_horizon else 4 * window
        self.exhaustive = exhaustive
        self.min_weight = min_weight
        self.decay = decay
        self._counts: dict[str, float] = {t.name: 0.0 for t in txns}
        self._seen = 0
        self.history: list[Reoptimization] = []
        # One search cache for the maintainer's lifetime: every cached
        # quantity (update costs, tracks, maintenance queries, query
        # costs) depends on a transaction type's *updates*, never on its
        # weight, so re-optimizing under reweighted copies of the same
        # transaction types reuses all of it.
        self._cache = SearchCache(dag.memo, cost_model, estimator)
        self.maintainer = self._build_maintainer(self.base_txns)
        self.maintainer.materialize()
        self.engine = self._build_engine()

    # -- plan management ---------------------------------------------------------

    def _reweighted(self) -> list[TransactionType]:
        total = sum(self._counts.values())
        txns = []
        for txn in self.base_txns:
            if total:
                weight = max(self._counts[txn.name] / total, self.min_weight)
            else:
                weight = txn.weight
            txns.append(TransactionType(txn.name, txn.updates, weight))
        return txns

    def _optimize(self, txns: Sequence[TransactionType]):
        if self.exhaustive:
            return optimal_view_set(
                self.dag, txns, self.cost_model, self.estimator, cache=self._cache
            )
        return greedy_view_set(
            self.dag, txns, self.cost_model, self.estimator, cache=self._cache
        )

    def _build_maintainer(self, txns: Sequence[TransactionType]) -> ViewMaintainer:
        result = self._optimize(txns)
        tracks = {name: plan.track for name, plan in result.best.per_txn.items()}
        return ViewMaintainer(
            self.db,
            self.dag,
            result.best_marking,
            txns,
            tracks,
            self.estimator,
            self.cost_model,
        )

    def _build_engine(self):
        from repro.engine import Engine

        return Engine(self.maintainer)

    @property
    def marking(self) -> frozenset[int]:
        return self.maintainer.marking

    # -- execution ------------------------------------------------------------------

    def apply(self, txn: Transaction):
        """Commit one transaction through the engine; every ``window``
        commits the observed mix may trigger re-optimization. Returns the
        engine's :class:`~repro.engine.engine.TransactionResult`."""
        result = self.engine.execute(txn)
        self._counts[txn.type_name] = self._counts.get(txn.type_name, 0) + 1
        self._seen += 1
        if self._seen % self.window == 0:
            self._maybe_reoptimize()
            # Exponential smoothing: recent windows dominate the estimate.
            for name in self._counts:
                self._counts[name] *= self.decay
        return result

    def _maybe_reoptimize(self) -> None:
        txns = self._reweighted()
        result = self._optimize(txns)
        old_marking = self.maintainer.marking
        new_marking = result.best_marking
        # Projected per-txn cost of keeping the current marking under the
        # new weights.
        from repro.core.optimizer import evaluate_view_set

        current = evaluate_view_set(
            self.dag.memo,
            old_marking,
            txns,
            self.cost_model,
            self.estimator,
            cache=self._cache,
        )
        migration = self._migration_cost(old_marking, new_marking)
        record = Reoptimization(
            at_txn=self._seen,
            weights={t.name: t.weight for t in txns},
            old_marking=old_marking,
            new_marking=new_marking,
            projected_old_cost=current.weighted_cost,
            projected_new_cost=result.best.weighted_cost,
            migration_cost=migration,
        )
        savings = (current.weighted_cost - result.best.weighted_cost) * self.horizon
        if new_marking != old_marking and savings > migration:
            self._migrate(txns, result)
        else:
            record = Reoptimization(
                at_txn=record.at_txn,
                weights=record.weights,
                old_marking=old_marking,
                new_marking=old_marking,  # kept
                projected_old_cost=record.projected_old_cost,
                projected_new_cost=record.projected_new_cost,
                migration_cost=migration,
            )
            # Even without a switch, refresh the tracks for the new weights.
            self.maintainer.txn_types = {t.name: t for t in txns}
            self.maintainer.tracks = {
                name: plan.track
                for name, plan in evaluate_view_set(
                    self.dag.memo,
                    old_marking,
                    txns,
                    self.cost_model,
                    self.estimator,
                    cache=self._cache,
                ).per_txn.items()
            }
        self.history.append(record)

    def _migration_cost(
        self, old_marking: frozenset[int], new_marking: frozenset[int]
    ) -> float:
        """Pages to build the views that are new (scans under the current
        marking, so existing views help); drops are free."""
        added = new_marking - old_marking
        return sum(
            self.cost_model.scan_cost(g, old_marking)
            for g in added
            if not self.dag.memo.group(g).is_leaf
        )

    def _migrate(self, txns, result) -> None:
        memo = self.dag.memo
        old = self.maintainer.marking
        new = result.best_marking
        # Charge the build of each added view.
        for gid in sorted(new - old):
            self.db.counter.charge_tuple_read(
                int(self.cost_model.scan_cost(gid, old))
            )
        for gid in old - new:
            name = self.maintainer.view_name(gid)
            if name in self.db:
                self.db.drop_relation(name)
        tracks = {name: plan.track for name, plan in result.best.per_txn.items()}
        self.maintainer = ViewMaintainer(
            self.db,
            self.dag,
            new,
            txns,
            tracks,
            self.estimator,
            self.cost_model,
        )
        self.maintainer.materialize()
        # The engine is bound to the old maintainer; rebuild it over the
        # migrated one so subsequent commits maintain the new view set.
        self.engine = self._build_engine()

    def verify(self) -> None:
        self.maintainer.verify()
