"""Persisting maintenance plans.

An advisor run (possibly expensive: exhaustive search over many view sets)
produces a marking and per-transaction update tracks. This module saves
that plan as JSON and reloads it against a *freshly rebuilt* DAG — DAG
construction is deterministic for a given view definition and rule set, so
group and operation ids are stable; a structural fingerprint guards
against loading a plan into a DAG that drifted (different view text, rules,
or library version).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Mapping

from repro.core.plan import OptimizationResult, TxnPlan, ViewSetEvaluation
from repro.core.tracks import UpdateTrack
from repro.dag.builder import ViewDag
from repro.dag.display import render_dag
from repro.dag.nodes import OperationNode

FORMAT_VERSION = 1


class PlanFormatError(Exception):
    """Raised when a persisted plan cannot be loaded safely."""


def dag_fingerprint(dag: ViewDag) -> str:
    """A stable structural hash of the expanded DAG."""
    parts = [render_dag(dag.memo)]
    parts.extend(f"{name}={dag.memo.find(gid)}" for name, gid in sorted(dag.roots.items()))
    return hashlib.sha256("\n".join(parts).encode()).hexdigest()


def _op_index(dag: ViewDag) -> dict[int, OperationNode]:
    return {op.id: op for op in dag.memo.ops()}


def plan_to_dict(dag: ViewDag, evaluation: ViewSetEvaluation) -> dict:
    """Serialize one view-set evaluation (marking + tracks + costs)."""
    return {
        "version": FORMAT_VERSION,
        "fingerprint": dag_fingerprint(dag),
        "marking": sorted(evaluation.marking),
        "weighted_cost": evaluation.weighted_cost,
        "per_txn": {
            name: {
                "query_cost": plan.query_cost,
                "update_cost": plan.update_cost,
                "track": {str(gid): op.id for gid, op in plan.track.items()},
            }
            for name, plan in evaluation.per_txn.items()
        },
    }


def plan_from_dict(dag: ViewDag, payload: Mapping) -> ViewSetEvaluation:
    """Rebuild a view-set evaluation against a freshly built DAG."""
    if payload.get("version") != FORMAT_VERSION:
        raise PlanFormatError(
            f"unsupported plan format version {payload.get('version')!r}"
        )
    if payload.get("fingerprint") != dag_fingerprint(dag):
        raise PlanFormatError(
            "plan fingerprint does not match this DAG — the view definition, "
            "rule set, or library version changed; re-run the optimizer"
        )
    ops = _op_index(dag)
    evaluation = ViewSetEvaluation(frozenset(payload["marking"]))
    evaluation.weighted_cost = float(payload["weighted_cost"])
    for name, entry in payload["per_txn"].items():
        track: UpdateTrack = {}
        for gid_text, op_id in entry["track"].items():
            op = ops.get(op_id)
            if op is None:
                raise PlanFormatError(f"operation node E{op_id} not found in DAG")
            track[int(gid_text)] = op
        evaluation.per_txn[name] = TxnPlan(
            name,
            float(entry["query_cost"]),
            float(entry["update_cost"]),
            track,
        )
    return evaluation


def save_plan(dag: ViewDag, result: OptimizationResult | ViewSetEvaluation, path) -> None:
    """Write the chosen plan to a JSON file."""
    evaluation = result.best if isinstance(result, OptimizationResult) else result
    Path(path).write_text(json.dumps(plan_to_dict(dag, evaluation), indent=2))


def load_plan(dag: ViewDag, path) -> ViewSetEvaluation:
    """Load a previously saved plan, validating it against ``dag``."""
    payload = json.loads(Path(path).read_text())
    return plan_from_dict(dag, payload)
