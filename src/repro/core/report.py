"""Human-readable reports for optimization results.

Turns an :class:`~repro.core.plan.OptimizationResult` into the kind of
advisor output a DBA would read: which views to materialize (with schemas
and index recommendations), per-transaction maintenance plans (the chosen
update track and the queries it poses), and the cost table over the view
sets that were considered.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.plan import OptimizationResult
from repro.core.tracks import track_ops
from repro.cost.estimates import DagEstimator
from repro.cost.page_io import PageIOCostModel
from repro.dag.builder import ViewDag
from repro.dag.queries import derive_queries
from repro.workload.transactions import TransactionType


def describe_marking(dag: ViewDag, marking: frozenset[int]) -> list[tuple[int, str]]:
    """(group id, rendered line) per marked node, sorted by id.

    Structured so callers (``render_report``, the observability layer's
    ``explain``) never have to re-parse rendered text to recover ids."""
    memo = dag.memo
    roots = {memo.find(r) for r in dag.roots.values()}
    lines = []
    for gid in sorted(marking):
        group = memo.group(gid)
        role = "the view itself" if gid in roots else "auxiliary"
        lines.append((gid, f"N{gid} ({role}): {group.schema}"))
    return lines


def recommend_base_indexes(
    dag: ViewDag,
    result: OptimizationResult,
    txns: Sequence[TransactionType],
    estimator: DagEstimator,
) -> dict[str, set[tuple[str, ...]]]:
    """Base-relation hash indexes the chosen plans probe.

    The cost model assumes these exist (the paper: "all indices are hash
    indices"); listing them makes the assumption actionable. Derived by
    walking the chosen tracks' queries down to leaf targets.
    """
    memo = dag.memo
    needed: dict[str, set[tuple[str, ...]]] = {}
    for txn in txns:
        plan = result.best.per_txn.get(txn.name)
        if plan is None:
            continue
        for op in track_ops(plan.track):
            for query in derive_queries(
                memo, op, txn, result.best_marking, estimator
            ):
                target = memo.group(query.target)
                if not target.is_leaf or not query.key_columns:
                    continue
                needed.setdefault(target.base_relation, set()).add(
                    tuple(sorted(query.key_columns))
                )
    return needed


def render_report(
    dag: ViewDag,
    result: OptimizationResult,
    txns: Sequence[TransactionType],
    cost_model: PageIOCostModel,
    estimator: DagEstimator,
    top: int = 5,
) -> str:
    """A full advisor report for the chosen view set."""
    memo = dag.memo
    lines: list[str] = []
    lines.append("=== Materialization advisor report ===")
    lines.append("")
    lines.append(
        f"View sets considered: {result.view_sets_considered}"
        + (
            f" (pruned by shielding: {result.view_sets_pruned})"
            if result.view_sets_pruned
            else ""
        )
    )
    if result.tracks_truncated:
        lines.append(
            "WARNING: track enumeration hit track_limit; some update tracks "
            "were never costed and the chosen plans may be suboptimal."
        )
    lines.append(f"Chosen view set (weighted {result.best.weighted_cost:.2f} I/Os/txn):")
    for gid, line in describe_marking(dag, result.best_marking):
        lines.append("  " + line)
        if not memo.group(gid).is_leaf:
            index = sorted(cost_model.index_columns(gid))
            if index:
                lines.append(f"      recommended hash index on ({', '.join(index)})")
    base_indexes = recommend_base_indexes(dag, result, txns, estimator)
    if base_indexes:
        lines.append("")
        lines.append("Base-relation indexes the plans rely on:")
        for relation, columns in sorted(base_indexes.items()):
            for cols in sorted(columns):
                lines.append(f"  {relation}: hash index on ({', '.join(cols)})")
    lines.append("")
    lines.append("Per-transaction maintenance plans:")
    for txn in txns:
        plan = result.best.per_txn.get(txn.name)
        if plan is None:
            continue
        lines.append(
            f"  {txn.name} (weight {txn.weight:g}): query {plan.query_cost:.2f} "
            f"+ update {plan.update_cost:.2f} = {plan.total:.2f} I/Os"
        )
        if not plan.track:
            lines.append("      no affected materialized views")
            continue
        for op in track_ops(plan.track):
            lines.append(
                f"      N{memo.find(op.group_id)} ← {op.label()}"
            )
            for query in derive_queries(
                memo, op, txn, result.best_marking, estimator
            ):
                cost = cost_model.query_cost(query, result.best_marking, txn)
                lines.append(f"          {query.describe(memo)} — {cost:.2f} I/Os")
    lines.append("")
    lines.append(f"Best {top} view sets:")
    ranked = sorted(result.evaluated, key=lambda e: e.weighted_cost)[:top]
    for ev in ranked:
        lines.append("  " + ev.describe(memo, root=result.root))
    if result.stats is not None:
        lines.append("")
        lines.append("Optimizer statistics:")
        for line in result.stats.lines():
            lines.append("  " + line)
    return "\n".join(lines)
