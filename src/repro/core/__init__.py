"""The paper's contribution: view-set optimization over expression DAGs."""

from repro.core.adaptive import AdaptiveMaintainer, Reoptimization
from repro.core.articulation import articulation_groups, local_optimum
from repro.core.heuristics import (
    approximate_view_set,
    greedy_view_set,
    heuristic_single_tree,
    heuristic_single_view_set,
    structural_marking,
)
from repro.core.memoize import OptimizerStats, SearchCache
from repro.core.multiview import MultiViewProblem
from repro.core.optimizer import (
    SearchSpaceError,
    evaluate_view_set,
    optimal_view_set,
)
from repro.core.plan import OptimizationResult, TxnPlan, ViewSetEvaluation
from repro.core.report import render_report
from repro.core.serialize import (
    PlanFormatError,
    dag_fingerprint,
    load_plan,
    plan_from_dict,
    plan_to_dict,
    save_plan,
)
from repro.core.space import (
    greedy_view_set_within_budget,
    marking_space,
    optimal_view_set_within_budget,
    space_time_curve,
    view_space_pages,
)
from repro.core.tracks import describe_track, enumerate_tracks

__all__ = [
    "AdaptiveMaintainer",
    "MultiViewProblem",
    "OptimizerStats",
    "Reoptimization",
    "OptimizationResult",
    "SearchCache",
    "PlanFormatError",
    "SearchSpaceError",
    "TxnPlan",
    "ViewSetEvaluation",
    "approximate_view_set",
    "articulation_groups",
    "describe_track",
    "enumerate_tracks",
    "evaluate_view_set",
    "greedy_view_set",
    "greedy_view_set_within_budget",
    "marking_space",
    "optimal_view_set_within_budget",
    "render_report",
    "dag_fingerprint",
    "load_plan",
    "plan_from_dict",
    "plan_to_dict",
    "save_plan",
    "space_time_curve",
    "view_space_pages",
    "heuristic_single_tree",
    "heuristic_single_view_set",
    "local_optimum",
    "optimal_view_set",
    "structural_marking",
]
