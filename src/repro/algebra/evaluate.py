"""Batch (from-scratch) evaluation of relational expressions over multisets.

This interpreter defines the *meaning* of the algebra. The IVM runtime
(:mod:`repro.ivm`) must agree with it: for any update stream, incrementally
maintained state equals re-evaluation from scratch. Property tests enforce
exactly that.

Three execution backends share these semantics:

* ``interpreted`` — the reference implementation in this module: an
  expression-tree walk with a ``dict(zip(names, row))`` per row;
* ``compiled`` (the default) — :mod:`repro.algebra.compile` turns each
  expression shape into specialized closures reading tuple positions
  directly, with fused Select→Project→Join pipelines, cached per session;
* ``columnar`` (requires numpy) — :mod:`repro.algebra.columnar` batches
  whole multisets through struct-of-arrays kernels, falling back to the
  compiled backend per node for anything it can't represent.

``evaluate(..., backend=...)`` selects per call;
:func:`repro.algebra.compile.set_default_backend` (or the
``REPRO_EXEC_BACKEND`` environment variable) selects session-wide. All
backends produce bit-identical multisets and identical I/O charges — a
hypothesis property (``tests/property/test_compile_equivalence.py``)
enforces it.
"""

from __future__ import annotations

from typing import Any, Mapping, Protocol

from repro.algebra.multiset import Multiset, Row
from repro.algebra.operators import (
    AggSpec,
    DuplicateElim,
    Difference,
    GroupAggregate,
    Join,
    Project,
    RelExpr,
    Scan,
    Select,
    Union,
)


class RelationSource(Protocol):
    """Anything that can produce the current contents of a base relation."""

    def multiset(self, name: str) -> Multiset: ...


class MappingSource:
    """Adapt a plain ``{name: Multiset}`` mapping to :class:`RelationSource`."""

    def __init__(self, relations: Mapping[str, Multiset]) -> None:
        self._relations = dict(relations)

    def multiset(self, name: str) -> Multiset:
        try:
            return self._relations[name]
        except KeyError:
            raise KeyError(f"unknown base relation {name!r}") from None


def evaluate(
    expr: RelExpr,
    source: RelationSource | Mapping[str, Multiset],
    backend: str | None = None,
) -> Multiset:
    """Evaluate ``expr`` against base-relation contents, returning a multiset.

    ``backend`` is ``"compiled"`` or ``"interpreted"``; ``None`` uses the
    session default (:func:`repro.algebra.compile.default_backend`).
    """
    from repro.algebra import compile as _compile

    if isinstance(source, Mapping):
        source = MappingSource(source)
    if backend is None:
        backend = _compile.default_backend()
    if backend == "interpreted":
        return _eval(expr, source)
    if backend == "compiled":
        return _compile.compiled_evaluate(expr, source)
    if backend == "columnar":
        # ImportError (numpy missing) propagates with install guidance;
        # session-wide selection degrades earlier via set_default_backend.
        from repro.algebra import columnar

        return columnar.columnar_evaluate(expr, source)
    raise ValueError(
        f"unknown execution backend {backend!r}; expected one of {_compile.BACKENDS}"
    )


def _eval(expr: RelExpr, source: RelationSource) -> Multiset:
    if isinstance(expr, Scan):
        return source.multiset(expr.name)
    if isinstance(expr, Select):
        return eval_select(expr, _eval(expr.input, source))
    if isinstance(expr, Project):
        return eval_project(expr, _eval(expr.input, source))
    if isinstance(expr, Join):
        return eval_join(expr, _eval(expr.left, source), _eval(expr.right, source))
    if isinstance(expr, GroupAggregate):
        return eval_group_aggregate(expr, _eval(expr.input, source))
    if isinstance(expr, DuplicateElim):
        return eval_dedup(_eval(expr.input, source))
    if isinstance(expr, Union):
        return _eval(expr.left, source) + _eval(expr.right, source)
    if isinstance(expr, Difference):
        return _eval(expr.left, source).monus(_eval(expr.right, source))
    raise TypeError(f"unknown operator {type(expr).__name__}")


# -- per-operator semantics, reusable by the IVM runtime ------------------------


def eval_select(expr: Select, input_: Multiset) -> Multiset:
    if not expr.predicate.conjuncts():
        # Trivially-true predicate (same guard eval_join applies to empty
        # residuals): skip the per-row dict entirely.
        return input_.copy()
    names = expr.input.schema.names
    out = Multiset()
    for row, count in input_.items():
        if expr.predicate.eval(dict(zip(names, row))):
            out.add(row, count)
    return out


def eval_project(expr: Project, input_: Multiset) -> Multiset:
    names = expr.input.schema.names
    out = Multiset()
    for row, count in input_.items():
        mapping = dict(zip(names, row))
        projected = tuple(scalar.eval(mapping) for _, scalar in expr.outputs)
        out.add(projected, count)
    if expr.dedup:
        return eval_dedup(out)
    return out


def eval_dedup(input_: Multiset) -> Multiset:
    if not input_.is_nonnegative():
        raise ValueError("cannot deduplicate a multiset with negative counts")
    out = Multiset()
    for row, count in input_.items():
        if count > 0:
            out.add(row, 1)
    return out


def eval_join(expr: Join, left: Multiset, right: Multiset) -> Multiset:
    """Hash natural join; counts multiply; residual predicate filters output.

    Output tuples follow the join's canonical (name-sorted) column order,
    with shared columns merged.
    """
    left_schema, right_schema = expr.left.schema, expr.right.schema
    shared = expr.join_columns
    left_idx = [left_schema.index_of(c) for c in shared]
    right_idx = [right_schema.index_of(c) for c in shared]
    # Build on the smaller side.
    build_left = left.distinct_size <= right.distinct_size
    build, probe = (left, right) if build_left else (right, left)
    build_idx, probe_idx = (left_idx, right_idx) if build_left else (right_idx, left_idx)

    table: dict[tuple[Any, ...], list[tuple[Row, int]]] = {}
    for row, count in build.items():
        key = tuple(row[i] for i in build_idx)
        table.setdefault(key, []).append((row, count))

    # Precompute, for each output column, where to read it from: the left
    # row (shared columns come from the left copy) or the right row.
    out_src: list[tuple[bool, int]] = []
    for name in expr.schema.names:
        if name in left_schema:
            out_src.append((True, left_schema.index_of(name)))
        else:
            out_src.append((False, right_schema.index_of(name)))

    names = expr.schema.names
    has_residual = expr.residual.conjuncts() != ()
    out = Multiset()
    for prow, pcount in probe.items():
        key = tuple(prow[i] for i in probe_idx)
        for brow, bcount in table.get(key, ()):
            lrow, rrow = (brow, prow) if build_left else (prow, brow)
            merged = tuple(
                lrow[idx] if from_left else rrow[idx] for from_left, idx in out_src
            )
            if has_residual and not expr.residual.eval(dict(zip(names, merged))):
                continue
            out.add(merged, pcount * bcount)
    return out


def compute_aggregate(spec: AggSpec, rows: list[tuple[Row, int]], names: tuple[str, ...]) -> Any:
    """Compute one aggregate over a group given ``(row, count)`` pairs.

    Counts must be positive. ``rows`` is the group's content.
    """
    if spec.func == "count" and spec.arg is None:
        return sum(count for _, count in rows)
    assert spec.arg is not None
    values = [
        (spec.arg.eval(dict(zip(names, row))), count) for row, count in rows
    ]
    if spec.func == "count":
        return sum(count for _, count in values)
    if spec.func == "sum":
        return sum(value * count for value, count in values)
    if spec.func == "avg":
        total = sum(value * count for value, count in values)
        n = sum(count for _, count in values)
        return total / n
    if spec.func == "min":
        return min(value for value, _ in values)
    if spec.func == "max":
        return max(value for value, _ in values)
    raise AssertionError(f"unreachable: {spec.func}")  # pragma: no cover


def eval_group_aggregate(expr: GroupAggregate, input_: Multiset) -> Multiset:
    if not input_.is_nonnegative():
        raise ValueError("cannot aggregate a multiset with negative counts")
    in_schema = expr.input.schema
    names = in_schema.names
    group_idx = [in_schema.index_of(g) for g in expr.group_by]
    groups: dict[tuple[Any, ...], list[tuple[Row, int]]] = {}
    for row, count in input_.items():
        if count <= 0:
            continue
        key = tuple(row[i] for i in group_idx)
        groups.setdefault(key, []).append((row, count))
    out = Multiset()
    if not expr.group_by and not groups:
        # Grand aggregate over the empty input: SQL yields a single row with
        # COUNT = 0 and NULL sums; we follow GROUP BY semantics instead and
        # produce no row, which keeps deltas symmetric. (The SQL frontend
        # only emits grand aggregates with GROUP BY-free COUNT in tests.)
        return out
    for key, rows in groups.items():
        aggs = tuple(compute_aggregate(spec, rows, names) for spec in expr.aggregates)
        out.add(key + aggs, 1)
    return out
