"""Boolean predicates over tuples.

Predicates drive selections (``SumSal > Budget``), join conditions
(``Dept.DName = Emp.DName``) and HAVING clauses. Like scalars they are
immutable and structurally hashable; conjunctions are flattened and their
conjuncts ordered canonically so that equal predicates compare equal
regardless of how they were assembled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from repro.algebra.scalar import Col, Scalar
from repro.algebra.schema import Schema
from repro.algebra.types import TypeError_, comparable


class Predicate:
    """Base class for boolean predicates."""

    def eval(self, row: Mapping[str, Any]) -> bool:
        raise NotImplementedError

    def columns(self) -> frozenset[str]:
        raise NotImplementedError

    def validate(self, schema: Schema) -> None:
        """Raise :class:`TypeError_` if the predicate is ill-typed for schema."""
        raise NotImplementedError

    def rename(self, mapping: Mapping[str, str]) -> "Predicate":
        raise NotImplementedError

    def conjuncts(self) -> tuple["Predicate", ...]:
        """Flatten top-level ANDs into a tuple of conjuncts."""
        return (self,)


@dataclass(frozen=True)
class TruePred(Predicate):
    """The always-true predicate (empty WHERE clause)."""

    def eval(self, row: Mapping[str, Any]) -> bool:
        return True

    def columns(self) -> frozenset[str]:
        return frozenset()

    def validate(self, schema: Schema) -> None:
        return None

    def rename(self, mapping: Mapping[str, str]) -> "TruePred":
        return self

    def conjuncts(self) -> tuple[Predicate, ...]:
        return ()

    def __str__(self) -> str:
        return "TRUE"


_CMP_OPS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class Compare(Predicate):
    """A binary comparison between two scalar expressions."""

    op: str
    left: Scalar
    right: Scalar

    def __post_init__(self) -> None:
        if self.op not in _CMP_OPS:
            raise TypeError_(f"unknown comparison operator {self.op!r}")

    def eval(self, row: Mapping[str, Any]) -> bool:
        return _CMP_OPS[self.op](self.left.eval(row), self.right.eval(row))

    def columns(self) -> frozenset[str]:
        return self.left.columns() | self.right.columns()

    def validate(self, schema: Schema) -> None:
        lt = self.left.output_type(schema)
        rt = self.right.output_type(schema)
        if not comparable(lt, rt):
            raise TypeError_(f"cannot compare {lt.value} {self.op} {rt.value} in {self}")

    def rename(self, mapping: Mapping[str, str]) -> "Compare":
        return Compare(self.op, self.left.rename(mapping), self.right.rename(mapping))

    def is_equijoin_condition(self) -> tuple[str, str] | None:
        """Return ``(left_col, right_col)`` when this is ``Col = Col``."""
        if self.op == "=" and isinstance(self.left, Col) and isinstance(self.right, Col):
            return (self.left.name, self.right.name)
        return None

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class Not(Predicate):
    """Logical negation."""

    inner: Predicate

    def eval(self, row: Mapping[str, Any]) -> bool:
        return not self.inner.eval(row)

    def columns(self) -> frozenset[str]:
        return self.inner.columns()

    def validate(self, schema: Schema) -> None:
        self.inner.validate(schema)

    def rename(self, mapping: Mapping[str, str]) -> "Not":
        return Not(self.inner.rename(mapping))

    def __str__(self) -> str:
        return f"NOT ({self.inner})"


@dataclass(frozen=True)
class And(Predicate):
    """Conjunction, stored as a canonically-ordered flat tuple of conjuncts."""

    parts: tuple[Predicate, ...]

    def eval(self, row: Mapping[str, Any]) -> bool:
        return all(p.eval(row) for p in self.parts)

    def columns(self) -> frozenset[str]:
        cols: frozenset[str] = frozenset()
        for p in self.parts:
            cols |= p.columns()
        return cols

    def validate(self, schema: Schema) -> None:
        for p in self.parts:
            p.validate(schema)

    def rename(self, mapping: Mapping[str, str]) -> Predicate:
        return conjunction(p.rename(mapping) for p in self.parts)

    def conjuncts(self) -> tuple[Predicate, ...]:
        return self.parts

    def __str__(self) -> str:
        return " AND ".join(f"({p})" for p in self.parts)


@dataclass(frozen=True)
class Or(Predicate):
    """Disjunction of two predicates."""

    left: Predicate
    right: Predicate

    def eval(self, row: Mapping[str, Any]) -> bool:
        return self.left.eval(row) or self.right.eval(row)

    def columns(self) -> frozenset[str]:
        return self.left.columns() | self.right.columns()

    def validate(self, schema: Schema) -> None:
        self.left.validate(schema)
        self.right.validate(schema)

    def rename(self, mapping: Mapping[str, str]) -> "Or":
        return Or(self.left.rename(mapping), self.right.rename(mapping))

    def __str__(self) -> str:
        return f"({self.left}) OR ({self.right})"


def conjunction(preds: Iterable[Predicate]) -> Predicate:
    """Build a canonical conjunction: flattened, deduplicated, sorted.

    Returns :class:`TruePred` for the empty conjunction and the single
    conjunct itself for singletons, so algebraically equal predicates built in
    different orders hash identically.
    """
    flat: list[Predicate] = []
    for p in preds:
        flat.extend(p.conjuncts())
    unique = sorted(set(flat), key=str)
    if not unique:
        return TruePred()
    if len(unique) == 1:
        return unique[0]
    return And(tuple(unique))
