"""Logical relational operators.

The operator set follows the paper: base-relation scans, selection,
(generalized) projection, equijoin with optional residual predicate,
grouping/aggregation, duplicate elimination, multiset union and difference.
Operators are immutable, structurally hashable values; their output schemas
(including derived candidate keys) are computed and validated at
construction time.

Column naming convention: bare names throughout, with natural-join semantics
— a join equates and merges all shared column names, matching the paper's
``Join (DName)`` figures. :class:`Project` renames where disambiguation is
needed (e.g. self-joins, produced by the SQL frontend).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.algebra.predicates import Predicate, TruePred
from repro.algebra.scalar import Col, Scalar
from repro.algebra.schema import Column, Schema, SchemaError
from repro.algebra.types import DataType, TypeError_


class AlgebraError(Exception):
    """Raised for ill-formed operator trees."""


class RelExpr:
    """Base class for relational expressions.

    Subclasses are frozen dataclasses; ``schema`` is derived in
    ``__post_init__`` and excluded from equality/hash.
    """

    schema: Schema

    @property
    def children(self) -> tuple["RelExpr", ...]:
        raise NotImplementedError

    def with_children(self, children: Sequence["RelExpr"]) -> "RelExpr":
        """Rebuild this operator over new children (same arity)."""
        raise NotImplementedError

    def label(self) -> str:
        """Short human-readable operator label (for DAG displays)."""
        raise NotImplementedError

    # -- traversal ---------------------------------------------------------------

    def walk(self) -> Iterator["RelExpr"]:
        """Pre-order traversal of the expression tree."""
        yield self
        for child in self.children:
            yield from child.walk()

    def base_relations(self) -> frozenset[str]:
        """Names of all base relations appearing under this expression."""
        names = frozenset()
        for node in self.walk():
            if isinstance(node, Scan):
                names |= {node.name}
        return names

    def size(self) -> int:
        """Number of operator nodes in the tree."""
        return sum(1 for _ in self.walk())

    def _set_schema(self, schema: Schema) -> None:
        object.__setattr__(self, "schema", schema)


@dataclass(frozen=True, eq=True)
class Scan(RelExpr):
    """Leaf: a base relation with bare column names.

    Shared column names across relations (``DName`` in both ``Emp`` and
    ``Dept``) are how natural joins find their join columns, exactly as in
    the paper's figures. Self-joins or unrelated same-named columns are
    disambiguated by a renaming :class:`Project` (see the SQL frontend).
    """

    name: str
    base_schema: Schema
    schema: Schema = field(init=False, compare=False, repr=False)

    def __post_init__(self) -> None:
        self._set_schema(self.base_schema)

    @property
    def children(self) -> tuple[RelExpr, ...]:
        return ()

    def with_children(self, children: Sequence[RelExpr]) -> "Scan":
        if children:
            raise AlgebraError("Scan has no children")
        return self

    def label(self) -> str:
        return self.name

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, eq=True)
class Select(RelExpr):
    """Selection: keep tuples satisfying a predicate."""

    input: RelExpr
    predicate: Predicate
    schema: Schema = field(init=False, compare=False, repr=False)

    def __post_init__(self) -> None:
        self.predicate.validate(self.input.schema)
        self._set_schema(self.input.schema)

    @property
    def children(self) -> tuple[RelExpr, ...]:
        return (self.input,)

    def with_children(self, children: Sequence[RelExpr]) -> "Select":
        (child,) = children
        return Select(child, self.predicate)

    def label(self) -> str:
        return f"Select({self.predicate})"

    def __str__(self) -> str:
        return f"σ[{self.predicate}]({self.input})"


@dataclass(frozen=True, eq=True)
class Project(RelExpr):
    """Generalized projection: named scalar outputs, optional dedup.

    With ``dedup=False`` this is a multiset projection (SQL SELECT without
    DISTINCT); with ``dedup=True`` duplicates are eliminated.
    """

    input: RelExpr
    outputs: tuple[tuple[str, Scalar], ...]
    dedup: bool = False
    schema: Schema = field(init=False, compare=False, repr=False)

    def __post_init__(self) -> None:
        if not self.outputs:
            raise AlgebraError("projection must retain at least one output")
        names = [name for name, _ in self.outputs]
        if len(names) != len(set(names)):
            raise AlgebraError(f"duplicate projection output names: {names}")
        in_schema = self.input.schema
        cols = tuple(
            Column(name, expr.output_type(in_schema)) for name, expr in self.outputs
        )
        self._set_schema(Schema(cols, self._derive_keys(in_schema)))

    def _derive_keys(self, in_schema: Schema) -> frozenset[frozenset[str]]:
        # A key survives projection when every key column is retained as a
        # plain column reference.
        retained: dict[str, str] = {}
        for name, expr in self.outputs:
            if isinstance(expr, Col):
                try:
                    retained.setdefault(in_schema.resolve(expr.name), name)
                except SchemaError:
                    continue
        keys = set()
        for key in in_schema.keys:
            if key <= set(retained):
                keys.add(frozenset(retained[a] for a in key))
        if self.dedup:
            # After dedup the full output is a key.
            keys.add(frozenset(name for name, _ in self.outputs))
        return frozenset(keys)

    @property
    def children(self) -> tuple[RelExpr, ...]:
        return (self.input,)

    def with_children(self, children: Sequence[RelExpr]) -> "Project":
        (child,) = children
        return Project(child, self.outputs, self.dedup)

    def label(self) -> str:
        cols = ", ".join(
            name if isinstance(expr, Col) and expr.name == name else f"{name}={expr}"
            for name, expr in self.outputs
        )
        tag = "ProjectDistinct" if self.dedup else "Project"
        return f"{tag}({cols})"

    def __str__(self) -> str:
        return f"π[{', '.join(n for n, _ in self.outputs)}]({self.input})"


@dataclass(frozen=True, eq=True)
class Join(RelExpr):
    """Natural join: equality on all shared column names, which are merged.

    This matches the paper's presentation (``Join (DName)``): the join
    columns appear once in the output. An optional ``residual`` predicate
    expresses additional non-equality conditions. Joins with no shared
    columns are rejected unless ``allow_cartesian`` is set.

    The output schema is order-canonical (columns sorted by name) so that
    commuted and re-associated joins land in the same equivalence class of
    the expression DAG.
    """

    left: RelExpr
    right: RelExpr
    residual: Predicate = field(default_factory=TruePred)
    allow_cartesian: bool = False
    schema: Schema = field(init=False, compare=False, repr=False)

    def __post_init__(self) -> None:
        left_schema, right_schema = self.left.schema, self.right.schema
        shared = sorted(set(left_schema.names) & set(right_schema.names))
        if not shared and not self.allow_cartesian:
            raise AlgebraError(
                f"natural join of {left_schema} and {right_schema} shares no columns; "
                "pass allow_cartesian=True for an explicit cartesian product"
            )
        for name in shared:
            lt, rt = left_schema.dtype_of(name), right_schema.dtype_of(name)
            if lt is not rt:
                raise AlgebraError(f"join column {name!r} has mismatched types {lt} vs {rt}")
        by_name = {c.name: c for c in left_schema.columns}
        by_name.update({c.name: c for c in right_schema.columns})
        cols = tuple(by_name[name] for name in sorted(by_name))
        merged = Schema(cols, frozenset(self._derive_keys(shared)))
        self.residual.validate(merged)
        self._set_schema(merged)

    @property
    def join_columns(self) -> tuple[str, ...]:
        """The shared (merged) column names, sorted."""
        return tuple(sorted(set(self.left.schema.names) & set(self.right.schema.names)))

    def _derive_keys(self, shared: Sequence[str]) -> set[frozenset[str]]:
        left_schema, right_schema = self.left.schema, self.right.schema
        keys: set[frozenset[str]] = set()
        # If the shared columns contain a right key, every left tuple matches
        # at most one right tuple, so left keys remain keys (and vice versa).
        if right_schema.has_key(shared):
            keys |= set(left_schema.keys)
        if left_schema.has_key(shared):
            keys |= set(right_schema.keys)
        return keys

    @property
    def children(self) -> tuple[RelExpr, ...]:
        return (self.left, self.right)

    def with_children(self, children: Sequence[RelExpr]) -> "Join":
        left, right = children
        return Join(left, right, self.residual, self.allow_cartesian)

    def label(self) -> str:
        conds = ", ".join(self.join_columns) or "×"
        extra = f" AND {self.residual}" if self.residual.conjuncts() else ""
        return f"Join({conds}{extra})"

    def __str__(self) -> str:
        return f"({self.left} ⋈[{', '.join(self.join_columns)}] {self.right})"


_AGG_FUNCS = ("sum", "count", "min", "max", "avg")


@dataclass(frozen=True, eq=True)
class AggSpec:
    """One aggregate in a GROUP BY: ``func(arg) AS out``.

    ``arg`` is ``None`` only for ``count`` (COUNT(*)).
    """

    func: str
    arg: Scalar | None
    out: str

    def __post_init__(self) -> None:
        if self.func not in _AGG_FUNCS:
            raise AlgebraError(f"unknown aggregate function {self.func!r}")
        if self.arg is None and self.func != "count":
            raise AlgebraError(f"{self.func.upper()} requires an argument")

    def output_type(self, in_schema: Schema) -> DataType:
        if self.func == "count":
            return DataType.INT
        assert self.arg is not None
        arg_type = self.arg.output_type(in_schema)
        if self.func == "avg":
            if not arg_type.is_numeric:
                raise TypeError_(f"AVG over non-numeric type {arg_type.value}")
            return DataType.FLOAT
        if self.func == "sum" and not arg_type.is_numeric:
            raise TypeError_(f"SUM over non-numeric type {arg_type.value}")
        return arg_type

    @property
    def is_self_maintainable(self) -> bool:
        """Whether the aggregate can absorb inserts *and* deletes from its
        old value alone (SUM/COUNT/AVG); MIN/MAX need group recomputation on
        deletes."""
        return self.func in ("sum", "count", "avg")

    def label(self) -> str:
        arg = "*" if self.arg is None else str(self.arg)
        return f"{self.func.upper()}({arg})"

    def __str__(self) -> str:
        return f"{self.label()} AS {self.out}"


@dataclass(frozen=True, eq=True)
class GroupAggregate(RelExpr):
    """Grouping with aggregation. Output: group columns then aggregates.

    Groups with no input tuples do not appear (SQL GROUP BY semantics).
    """

    input: RelExpr
    group_by: tuple[str, ...]
    aggregates: tuple[AggSpec, ...]
    schema: Schema = field(init=False, compare=False, repr=False)

    def __post_init__(self) -> None:
        in_schema = self.input.schema
        resolved = tuple(sorted(in_schema.resolve(g) for g in self.group_by))
        if len(set(resolved)) != len(resolved):
            raise AlgebraError(f"duplicate group-by columns: {self.group_by}")
        object.__setattr__(self, "group_by", resolved)
        object.__setattr__(
            self, "aggregates", tuple(sorted(self.aggregates, key=lambda a: a.out))
        )
        if not self.aggregates and not resolved:
            raise AlgebraError("GroupAggregate requires group columns or aggregates")
        out_names = list(resolved) + [a.out for a in self.aggregates]
        if len(out_names) != len(set(out_names)):
            raise AlgebraError(f"duplicate output names in aggregation: {out_names}")
        cols = [Column(g, in_schema.dtype_of(g)) for g in resolved]
        for agg in self.aggregates:
            if agg.arg is not None:
                # Validate the argument types eagerly.
                agg.arg.output_type(in_schema)
            cols.append(Column(agg.out, agg.output_type(in_schema)))
        keys = {frozenset(resolved)} if resolved else {frozenset(out_names)}
        self._set_schema(Schema(tuple(cols), frozenset(keys)))

    @property
    def children(self) -> tuple[RelExpr, ...]:
        return (self.input,)

    def with_children(self, children: Sequence[RelExpr]) -> "GroupAggregate":
        (child,) = children
        return GroupAggregate(child, self.group_by, self.aggregates)

    @property
    def is_self_maintainable(self) -> bool:
        return all(a.is_self_maintainable for a in self.aggregates)

    def label(self) -> str:
        aggs = ", ".join(a.label() for a in self.aggregates)
        return f"Aggregate({aggs} BY {', '.join(self.group_by)})"

    def __str__(self) -> str:
        aggs = ", ".join(str(a) for a in self.aggregates)
        return f"γ[{', '.join(self.group_by)}; {aggs}]({self.input})"


@dataclass(frozen=True, eq=True)
class DuplicateElim(RelExpr):
    """Duplicate elimination (SELECT DISTINCT)."""

    input: RelExpr
    schema: Schema = field(init=False, compare=False, repr=False)

    def __post_init__(self) -> None:
        in_schema = self.input.schema
        keys = set(in_schema.keys) | {frozenset(in_schema.names)}
        self._set_schema(Schema(in_schema.columns, frozenset(keys)))

    @property
    def children(self) -> tuple[RelExpr, ...]:
        return (self.input,)

    def with_children(self, children: Sequence[RelExpr]) -> "DuplicateElim":
        (child,) = children
        return DuplicateElim(child)

    def label(self) -> str:
        return "Distinct"

    def __str__(self) -> str:
        return f"δ({self.input})"


def _require_union_compatible(left: Schema, right: Schema, what: str) -> None:
    if left.names != right.names or tuple(c.dtype for c in left.columns) != tuple(
        c.dtype for c in right.columns
    ):
        raise AlgebraError(f"{what} operands have incompatible schemas: {left} vs {right}")


@dataclass(frozen=True, eq=True)
class Union(RelExpr):
    """Multiset (bag) union — SQL UNION ALL."""

    left: RelExpr
    right: RelExpr
    schema: Schema = field(init=False, compare=False, repr=False)

    def __post_init__(self) -> None:
        _require_union_compatible(self.left.schema, self.right.schema, "union")
        self._set_schema(Schema(self.left.schema.columns, frozenset()))

    @property
    def children(self) -> tuple[RelExpr, ...]:
        return (self.left, self.right)

    def with_children(self, children: Sequence[RelExpr]) -> "Union":
        left, right = children
        return Union(left, right)

    def label(self) -> str:
        return "UnionAll"

    def __str__(self) -> str:
        return f"({self.left} ∪ {self.right})"


@dataclass(frozen=True, eq=True)
class Difference(RelExpr):
    """Multiset difference with clamping (SQL EXCEPT ALL)."""

    left: RelExpr
    right: RelExpr
    schema: Schema = field(init=False, compare=False, repr=False)

    def __post_init__(self) -> None:
        _require_union_compatible(self.left.schema, self.right.schema, "difference")
        self._set_schema(Schema(self.left.schema.columns, self.left.schema.keys))

    @property
    def children(self) -> tuple[RelExpr, ...]:
        return (self.left, self.right)

    def with_children(self, children: Sequence[RelExpr]) -> "Difference":
        left, right = children
        return Difference(left, right)

    def label(self) -> str:
        return "ExceptAll"

    def __str__(self) -> str:
        return f"({self.left} − {self.right})"


def natural_join(left: RelExpr, right: RelExpr) -> Join:
    """Convenience constructor for a natural join."""
    return Join(left, right)


def project_columns(input_: RelExpr, names: Sequence[str], dedup: bool = False) -> Project:
    """Project plain columns, optionally renaming via ``"out=in"`` strings."""
    outputs = []
    for name in names:
        if "=" in name:
            out, src = (part.strip() for part in name.split("=", 1))
        else:
            out, src = name.rsplit(".", 1)[-1], name
        outputs.append((out, Col(input_.schema.resolve(src))))
    return Project(input_, tuple(outputs), dedup)
