"""Schemas: ordered, named, typed columns plus key metadata.

Keys matter for this paper: the Yan–Larson style aggregate push-down rule and
the delta-completeness analysis (the reason query Q3d in Section 3.6 costs no
I/O) are licensed by declared keys, e.g. ``DName`` being a key of ``Dept``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.algebra.types import DataType, TypeError_, check_value


class SchemaError(Exception):
    """Raised for malformed schemas or column-resolution failures."""


@dataclass(frozen=True)
class Column:
    """A named, typed column."""

    name: str
    dtype: DataType

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("column name must be non-empty")

    def __str__(self) -> str:
        return f"{self.name}:{self.dtype.value}"


@dataclass(frozen=True)
class Schema:
    """An ordered collection of columns with optional candidate keys.

    Column names must be unique. Qualified names (``Emp.Salary``) are resolved
    by suffix match so that translated SQL can refer to columns either way.
    """

    columns: tuple[Column, ...]
    keys: frozenset[frozenset[str]] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(names) != len(set(names)):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise SchemaError(f"duplicate column names: {dupes}")
        for key in self.keys:
            missing = set(key) - set(names)
            if missing:
                raise SchemaError(f"key {sorted(key)} references unknown columns {sorted(missing)}")
        # Exact representation types, used by the validate_tuple fast path.
        object.__setattr__(
            self, "_pytypes", tuple(c.dtype.python_type for c in self.columns)
        )

    # -- construction helpers ------------------------------------------------

    @staticmethod
    def of(*cols: tuple[str, DataType] | Column, keys: Iterable[Iterable[str]] = ()) -> "Schema":
        """Build a schema from ``(name, dtype)`` pairs or Column objects."""
        built = tuple(c if isinstance(c, Column) else Column(c[0], c[1]) for c in cols)
        return Schema(built, frozenset(frozenset(k) for k in keys))

    # -- lookup ----------------------------------------------------------------

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self.columns)

    def __contains__(self, name: str) -> bool:
        try:
            self.resolve(name)
        except SchemaError:
            return False
        return True

    def index_of(self, name: str) -> int:
        """Position of ``name`` (qualified or bare) in the schema."""
        resolved = self.resolve(name)
        for i, col in enumerate(self.columns):
            if col.name == resolved:
                return i
        raise SchemaError(f"unreachable: {resolved}")  # pragma: no cover

    def resolve(self, name: str) -> str:
        """Resolve a possibly-qualified column reference to the schema name.

        Exact matches win; otherwise a unique suffix match after the final
        ``.`` is accepted (``Salary`` matches ``Emp.Salary``) and vice versa
        (``Emp.Salary`` matches a column stored as ``Salary`` only when no
        exact match exists and exactly one column has that suffix).
        """
        names = self.names
        if name in names:
            return name
        bare = name.rsplit(".", 1)[-1]
        candidates = [n for n in names if n == bare or n.rsplit(".", 1)[-1] == bare]
        if len(candidates) == 1:
            return candidates[0]
        if not candidates:
            raise SchemaError(f"no column {name!r} in schema {list(names)}")
        raise SchemaError(f"ambiguous column {name!r}: matches {candidates}")

    def dtype_of(self, name: str) -> DataType:
        return self.columns[self.index_of(name)].dtype

    # -- key reasoning ---------------------------------------------------------

    def has_key(self, attrs: Iterable[str]) -> bool:
        """Whether some declared candidate key is contained in ``attrs``."""
        resolved = {self.resolve(a) for a in attrs}
        return any(key <= resolved for key in self.keys)

    # -- derivation -------------------------------------------------------------

    def project(self, names: Sequence[str]) -> "Schema":
        """Schema restricted (and reordered) to ``names``; keys kept if intact."""
        resolved = [self.resolve(n) for n in names]
        cols = tuple(self.columns[self.index_of(n)] for n in resolved)
        kept = frozenset(k for k in self.keys if k <= set(resolved))
        return Schema(cols, kept)

    def rename(self, mapping: Mapping[str, str]) -> "Schema":
        """Rename columns; keys are rewritten through the mapping."""
        resolved = {self.resolve(old): new for old, new in mapping.items()}
        cols = tuple(Column(resolved.get(c.name, c.name), c.dtype) for c in self.columns)
        keys = frozenset(frozenset(resolved.get(a, a) for a in key) for key in self.keys)
        return Schema(cols, keys)

    def concat(self, other: "Schema", extra_keys: Iterable[Iterable[str]] = ()) -> "Schema":
        """Concatenate two schemas (join output); caller supplies result keys."""
        keys = frozenset(frozenset(k) for k in extra_keys)
        return Schema(self.columns + other.columns, keys)

    # -- tuples ------------------------------------------------------------------

    def validate_tuple(self, values: Sequence[Any]) -> tuple[Any, ...]:
        """Type-check a tuple against the schema, returning a normalized tuple.

        Fast path: values whose representation types already match exactly
        (the overwhelmingly common case on maintenance hot paths) skip the
        per-value coercion machinery; anything else — wrong arity, a bool
        where an int is declared, an int needing FLOAT widening — falls
        through to the full check with its original error behavior.
        """
        if tuple(map(type, values)) == self._pytypes:  # type: ignore[attr-defined]
            return tuple(values)
        if len(values) != len(self.columns):
            raise TypeError_(
                f"tuple arity {len(values)} does not match schema arity {len(self.columns)}"
            )
        return tuple(check_value(v, c.dtype) for v, c in zip(values, self.columns))

    def as_dict(self, values: Sequence[Any]) -> dict[str, Any]:
        """View a tuple as a column-name → value mapping."""
        return dict(zip(self.names, values))

    def __str__(self) -> str:
        cols = ", ".join(str(c) for c in self.columns)
        return f"({cols})"
