"""Relational algebra substrate: schemas, expressions, operators, evaluation.

Public API re-exports the pieces most users need to define views
programmatically; the SQL frontend (:mod:`repro.sql`) builds the same
structures from text.
"""

from repro.algebra.evaluate import MappingSource, evaluate
from repro.algebra.multiset import Multiset, Row
from repro.algebra.operators import (
    AggSpec,
    AlgebraError,
    Difference,
    DuplicateElim,
    GroupAggregate,
    Join,
    Project,
    RelExpr,
    Scan,
    Select,
    Union,
    natural_join,
    project_columns,
)
from repro.algebra.predicates import (
    And,
    Compare,
    Not,
    Or,
    Predicate,
    TruePred,
    conjunction,
)
from repro.algebra.scalar import Arith, Col, Const, Scalar, col, lit
from repro.algebra.schema import Column, Schema, SchemaError
from repro.algebra.tree import render_tree, rewrite_bottom_up, subexpressions
from repro.algebra.types import DataType, TypeError_

__all__ = [
    "AggSpec",
    "AlgebraError",
    "And",
    "Arith",
    "Col",
    "Column",
    "Compare",
    "Const",
    "DataType",
    "Difference",
    "DuplicateElim",
    "GroupAggregate",
    "Join",
    "MappingSource",
    "Multiset",
    "Not",
    "Or",
    "Predicate",
    "Project",
    "RelExpr",
    "Row",
    "Scalar",
    "Scan",
    "Schema",
    "SchemaError",
    "Select",
    "TruePred",
    "TypeError_",
    "Union",
    "col",
    "conjunction",
    "evaluate",
    "lit",
    "natural_join",
    "project_columns",
    "render_tree",
    "rewrite_bottom_up",
    "subexpressions",
]
