"""Scalar type system for the relational algebra.

The paper's examples use integers and strings (department names, salaries,
budgets); we support a small, closed set of scalar types with explicit
coercion rules so that expressions can be type-checked when views are
defined rather than when the first tuple flows through them.
"""

from __future__ import annotations

import enum
from typing import Any


class DataType(enum.Enum):
    """Scalar column types supported by the engine."""

    INT = "int"
    FLOAT = "float"
    STRING = "string"
    BOOL = "bool"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DataType.{self.name}"

    @property
    def is_numeric(self) -> bool:
        return self in (DataType.INT, DataType.FLOAT)

    @property
    def python_type(self) -> type:
        """The exact Python representation type for values of this type.

        Exact means ``type(v) is dtype.python_type`` — a ``bool`` is *not* a
        valid INT value even though ``bool`` subclasses ``int``.
        """
        return _PYTHON_TYPES[self]


_PYTHON_TYPES = {
    DataType.INT: int,
    DataType.FLOAT: float,
    DataType.STRING: str,
    DataType.BOOL: bool,
}


class TypeError_(Exception):
    """Raised when an expression or tuple fails type checking.

    Named with a trailing underscore to avoid shadowing the builtin while
    still reading naturally at raise sites.
    """


def infer_type(value: Any) -> DataType:
    """Infer the :class:`DataType` of a Python value.

    ``bool`` is checked before ``int`` because ``bool`` is a subclass of
    ``int`` in Python.
    """
    if isinstance(value, bool):
        return DataType.BOOL
    if isinstance(value, int):
        return DataType.INT
    if isinstance(value, float):
        return DataType.FLOAT
    if isinstance(value, str):
        return DataType.STRING
    raise TypeError_(f"unsupported scalar value: {value!r} ({type(value).__name__})")


def check_value(value: Any, expected: DataType) -> Any:
    """Validate (and mildly coerce) ``value`` against ``expected``.

    An ``int`` is accepted where a ``FLOAT`` is expected (widening), mirroring
    SQL numeric promotion. Everything else must match exactly.
    """
    actual = infer_type(value)
    if actual is expected:
        return value
    if expected is DataType.FLOAT and actual is DataType.INT:
        return float(value)
    raise TypeError_(f"value {value!r} has type {actual.value}, expected {expected.value}")


def unify_numeric(left: DataType, right: DataType) -> DataType:
    """Result type of an arithmetic operation over two numeric types."""
    if not (left.is_numeric and right.is_numeric):
        raise TypeError_(f"arithmetic requires numeric operands, got {left.value} and {right.value}")
    if DataType.FLOAT in (left, right):
        return DataType.FLOAT
    return DataType.INT


def comparable(left: DataType, right: DataType) -> bool:
    """Whether two types may be compared with ``=``, ``<`` etc."""
    if left is right:
        return True
    return left.is_numeric and right.is_numeric
