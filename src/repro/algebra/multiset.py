"""Multisets of tuples with signed counts.

SQL tables and views have multiset (bag) semantics, and incremental view
maintenance is naturally expressed over *signed* multisets: a delta is a
multiset where positive counts are insertions and negative counts are
deletions (the counting algorithm). This class is the common currency of the
evaluator (:mod:`repro.algebra.evaluate`) and the IVM runtime
(:mod:`repro.ivm`).
"""

from __future__ import annotations

from itertools import repeat
from typing import Any, Dict, Iterable, Iterator, Mapping, Tuple

Row = Tuple[Any, ...]


class Multiset:
    """A multiset of tuples, stored as tuple → signed count.

    Zero-count entries are never stored; the empty multiset is falsy.
    """

    __slots__ = ("_counts",)

    def __init__(self, items: Iterable[Row] | Mapping[Row, int] | None = None) -> None:
        self._counts: Dict[Row, int] = {}
        if items is None:
            return
        if isinstance(items, Mapping):
            for row, count in items.items():
                self.add(row, count)
        else:
            for row in items:
                self.add(row, 1)

    # -- mutation ---------------------------------------------------------------

    def add(self, row: Row, count: int = 1) -> None:
        """Adjust the count of ``row`` by ``count`` (which may be negative)."""
        if count == 0:
            return
        new = self._counts.get(row, 0) + count
        if new == 0:
            self._counts.pop(row, None)
        else:
            self._counts[row] = new

    def update(self, other: "Multiset", scale: int = 1) -> None:
        """Merge ``other`` into this multiset, scaling counts by ``scale``."""
        counts = self._counts
        get = counts.get
        for row, count in other._counts.items():
            new = get(row, 0) + count * scale
            if new == 0:
                counts.pop(row, None)
            else:
                counts[row] = new

    # -- queries -----------------------------------------------------------------

    def count(self, row: Row) -> int:
        return self._counts.get(row, 0)

    def items(self) -> Iterator[tuple[Row, int]]:
        return iter(self._counts.items())

    def rows(self) -> Iterator[Row]:
        """Iterate distinct rows (ignoring multiplicity)."""
        return iter(self._counts)

    def expand(self) -> Iterator[Row]:
        """Iterate rows with multiplicity; requires all counts non-negative."""
        for row, count in self._counts.items():
            if count < 0:
                raise ValueError(f"cannot expand multiset with negative count for {row}")
            yield from repeat(row, count)

    @property
    def distinct_size(self) -> int:
        return len(self._counts)

    def total(self) -> int:
        """Sum of counts (may be negative for deltas)."""
        return sum(self._counts.values())

    def total_abs(self) -> int:
        """Sum of absolute counts — the 'size' of a delta."""
        return sum(abs(c) for c in self._counts.values())

    def is_nonnegative(self) -> bool:
        return all(c >= 0 for c in self._counts.values())

    def __len__(self) -> int:
        return len(self._counts)

    def __bool__(self) -> bool:
        return bool(self._counts)

    def __contains__(self, row: Row) -> bool:
        return row in self._counts

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Multiset):
            return NotImplemented
        return self._counts == other._counts

    def __hash__(self) -> int:  # pragma: no cover - multisets are mutable
        raise TypeError("Multiset is unhashable")

    def __repr__(self) -> str:
        inner = ", ".join(f"{row}×{count}" for row, count in sorted(self._counts.items(), key=repr))
        return f"Multiset{{{inner}}}"

    # -- algebra -----------------------------------------------------------------

    def copy(self) -> "Multiset":
        out = Multiset()
        out._counts = dict(self._counts)
        return out

    def __add__(self, other: "Multiset") -> "Multiset":
        out = self.copy()
        out.update(other)
        return out

    def __sub__(self, other: "Multiset") -> "Multiset":
        out = self.copy()
        out.update(other, scale=-1)
        return out

    def negate(self) -> "Multiset":
        out = Multiset()
        out._counts = {row: -count for row, count in self._counts.items()}
        return out

    def monus(self, other: "Multiset") -> "Multiset":
        """Multiset difference with clamping at zero (SQL EXCEPT ALL)."""
        out = Multiset()
        for row, count in self._counts.items():
            remaining = count - other.count(row)
            if remaining > 0:
                out.add(row, remaining)
        return out

    def positive_part(self) -> "Multiset":
        out = Multiset()
        out._counts = {row: count for row, count in self._counts.items() if count > 0}
        return out

    def negative_part(self) -> "Multiset":
        """The deletions of a delta, returned with positive counts."""
        out = Multiset()
        out._counts = {row: -count for row, count in self._counts.items() if count < 0}
        return out

    @staticmethod
    def from_rows(rows: Iterable[Row]) -> "Multiset":
        return Multiset(rows)
