"""Columnar (numpy) execution backend: batch multisets through array kernels.

The third execution backend. Relations and delta multisets convert to a
struct-of-arrays form (:class:`ColumnSet`: one typed array per column plus a
signed-count vector), and each operator runs as a handful of whole-array
kernels instead of a per-tuple Python loop:

=================  ==========================================================
operator           kernel
=================  ==========================================================
Select             vectorized predicate -> boolean mask -> filtered gather
Project            column gathers; scalar arithmetic vectorized
Join               scatter match when one side's key is unique over a dense
                   int range (one ``pos`` array, no sort); otherwise
                   stable-argsort + ``np.searchsorted`` range expansion;
                   multi-column keys factorized via ``np.unique`` codes
Join (stored RHS)  cached CSR index probe (:meth:`_CacheEntry.join_index`):
                   offsets direct-indexed by key, I/O charged exactly like
                   ``HashIndex.probe_buckets`` from a cumulative-count
                   prefix array — no bucket expansion to compute charges
GroupAggregate     lexsort group keys -> segmented ``reduceat`` reductions
DuplicateElim      consolidate (segmented count merge) -> counts := 1
Union              column concatenation (lazily consolidated)
Difference (monus) consolidate both sides, scatter-match rows, clamp at zero
=================  ==========================================================

Invariants shared with the other two backends:

* **Semantics** — the interpreted backend remains the oracle; results are
  bit-identical multisets (property-tested three ways).
* **Cost transparency** — kernels never touch the ``IOCounter``; only the
  stored-relation probe path charges, and it charges *exactly* what
  ``HashIndex.probe_buckets`` would: one index read per distinct probed
  key (misses included), one tuple read per matching stored count.
* **Fallback, observably** — any operator/type the columnar path cannot
  represent (object-dtype predicates, ``/`` arithmetic, potential int64
  overflow, cartesian joins, ...) falls back *per node* to the compiled
  backend, counted in ``MetricsRegistry`` under ``columnar.fallback`` and
  ``columnar.fallback.<op>`` — never silently. Kernels raise only
  :class:`ColumnarFallback`; real evaluation errors (``ZeroDivisionError``,
  ``KeyError``, negative-count ``ValueError``) surface from the compiled
  re-run so exception behaviour matches the other backends.

Conversion caching: encoding a 100k-row relation costs ~100ms of Python
(the irreducible tuple->array floor), so :class:`ConversionCache` keys
encoded columns — and derived per-key join indexes — by relation identity
plus :attr:`StoredRelation.version`, exactly the session-lifetime policy of
``PlanCache``. Entries invalidate on any mutation and die with the relation
(weak keys). Ad-hoc multisets (deltas, intermediates) encode per call.

``compose_deltas`` is intentionally *not* rewired through this module: at
typical staged-delta sizes the encode/decode round trip costs more than the
dict merge it would replace. The consolidation kernel here serves the
operators that need it (dedup, monus, aggregate inputs).
"""

from __future__ import annotations

import itertools
import weakref
from typing import Any, Callable, Iterable, Sequence

try:
    import numpy as np
except ImportError as exc:  # pragma: no cover - exercised via importorskip
    raise ImportError(
        "the columnar execution backend requires numpy; "
        "install it with 'pip install repro[columnar]'"
    ) from exc

from repro.algebra import compile as _compile
from repro.algebra.multiset import Multiset
from repro.algebra.operators import (
    Difference,
    DuplicateElim,
    GroupAggregate,
    Join,
    Project,
    RelExpr,
    Scan,
    Select,
    Union,
)
from repro.algebra.predicates import And, Compare, Not, Or, Predicate
from repro.algebra.scalar import Arith, Col, Const, Scalar
from repro.obs.metrics import get_metrics

# Encoded int64 values stay below 2^31 in magnitude so that a single
# add/subtract/multiply cannot leave int64; deeper arithmetic re-checks
# bounds per operation and falls back rather than wrap.
_INT_BOUND = 1 << 31
_SAFE_BOUND = 1 << 62
# A key column is "dense" when a direct-addressed position array over its
# value range costs at most a small constant factor of the row count.
_DENSE_SLACK = 4
_DENSE_PAD = 1024


class ColumnarFallback(Exception):
    """Internal control flow: this node/type can't run on the columnar path."""


def _count_fallback(op: str) -> None:
    metrics = get_metrics()
    metrics.counter("columnar.fallback").inc()
    metrics.counter(f"columnar.fallback.{op}").inc()


# -- Multiset <-> struct-of-arrays codec ---------------------------------------------


def _encode_column(values: tuple) -> "np.ndarray":
    """One column to an array: exact int64 when every value is a plain
    ``int`` small enough to be overflow-safe, else object dtype (Python
    semantics preserved verbatim; such columns only flow through gathers)."""
    for v in values:
        if type(v) is not int or v >= _INT_BOUND or v <= -_INT_BOUND:
            arr = np.empty(len(values), dtype=object)
            arr[:] = values
            return arr
    return np.array(values, dtype=np.int64)


def _decode_column(arr: "np.ndarray") -> list:
    # .tolist() converts numpy scalars back to exact Python ints/floats;
    # object columns hold the original Python values already.
    return arr.tolist()


class ColumnSet:
    """A multiset in struct-of-arrays form.

    ``names`` fixes the row layout (tuple position -> column), ``cols`` maps
    each name to an array of length ``n``, and ``counts`` carries the signed
    multiplicities. Row-identity may be *lazily unconsolidated*: the same
    row can appear on several indices and only the summed count is
    meaningful. All kernels are linear in counts, so this is invisible —
    operators that need canonical rows (dedup, monus, decode) consolidate.
    """

    __slots__ = ("names", "cols", "counts")

    def __init__(self, names: tuple[str, ...], cols: dict, counts: "np.ndarray") -> None:
        self.names = names
        self.cols = cols
        self.counts = counts

    @property
    def n(self) -> int:
        return int(self.counts.shape[0])

    @classmethod
    def from_multiset(cls, ms: Multiset, names: Sequence[str]) -> "ColumnSet":
        return cls.from_rows(ms._counts.keys(), ms._counts.values(), names)

    @classmethod
    def from_rows(cls, rows: Iterable, counts: Iterable, names: Sequence[str]) -> "ColumnSet":
        names = tuple(names)
        count_list = list(counts)
        n = len(count_list)
        count_arr = np.fromiter(count_list, dtype=np.int64, count=n)
        cols: dict[str, np.ndarray] = {}
        if not n:
            for name in names:
                cols[name] = np.empty(0, dtype=np.int64)
            return cls(names, cols, count_arr)
        row_list = rows if isinstance(rows, (list, tuple)) else list(rows)
        width = len(names)
        # Fast path — the common delta shape is all-small-int rows: one
        # C-speed type scan, then one flat fromiter into an (n, width)
        # matrix. The strict `type(...) is int` gate rejects bools and
        # floats (fromiter would silently coerce both); the magnitude gate
        # preserves the per-column overflow policy of _encode_column.
        if width and set(map(type, itertools.chain.from_iterable(row_list))) == {int}:
            try:
                mat = np.fromiter(
                    itertools.chain.from_iterable(row_list),
                    dtype=np.int64,
                    count=n * width,
                ).reshape(n, width)
            except OverflowError:
                mat = None
            if mat is not None and -_INT_BOUND < mat.min() and mat.max() < _INT_BOUND:
                for i, name in enumerate(names):
                    cols[name] = np.ascontiguousarray(mat[:, i])
                return cls(names, cols, count_arr)
        for name, values in zip(names, zip(*row_list)):
            cols[name] = _encode_column(values)
        return cls(names, cols, count_arr)

    def to_multiset(self) -> Multiset:
        out = Multiset()
        if not self.n:
            return out
        columns = [_decode_column(self.cols[name]) for name in self.names]
        add = out.add
        for row_count in zip(zip(*columns), self.counts.tolist()):
            add(*row_count)
        return out


# -- per-session conversion cache ----------------------------------------------------


class _JoinIndex:
    """A CSR-shaped join index over one int64 key column of a cached
    relation: ``order`` clusters row positions by key; ``ccum`` is the
    cumulative stored-count prefix over that order, so the exact
    ``probe_buckets`` tuple-read charge for any key is ``ccum[hi]-ccum[lo]``
    with no bucket expansion. Dense key ranges direct-address ``offsets``;
    sparse ones binary-search ``keys_sorted``."""

    __slots__ = ("dense", "kmin", "width", "offsets", "order", "keys_sorted", "ccum")

    def __init__(self, keys: "np.ndarray", counts: "np.ndarray") -> None:
        n = keys.shape[0]
        kmin = int(keys.min()) if n else 0
        kmax = int(keys.max()) if n else -1
        width = kmax - kmin + 1
        self.kmin = kmin
        self.dense = n > 0 and width <= _DENSE_SLACK * n + _DENSE_PAD
        if self.dense:
            shifted = keys - kmin
            self.width = width
            self.order = np.argsort(shifted, kind="stable")
            bincounts = np.bincount(shifted, minlength=width)
            self.offsets = np.empty(width + 1, dtype=np.int64)
            self.offsets[0] = 0
            np.cumsum(bincounts, out=self.offsets[1:])
            self.keys_sorted = None
        else:
            self.width = 0
            self.order = np.argsort(keys, kind="stable")
            self.keys_sorted = keys[self.order]
            self.offsets = None
        self.ccum = np.empty(n + 1, dtype=np.int64)
        self.ccum[0] = 0
        np.cumsum(counts[self.order], out=self.ccum[1:])

    def probe(self, probe_keys: "np.ndarray") -> tuple["np.ndarray", "np.ndarray"]:
        """Sorted-order [lo, hi) match ranges per probe key (empty on miss)."""
        if self.dense:
            shifted = probe_keys - self.kmin
            in_bounds = (shifted >= 0) & (shifted < self.width)
            clipped = np.where(in_bounds, shifted, 0)
            lo = self.offsets[clipped]
            hi = self.offsets[clipped + 1]
            lo[~in_bounds] = 0
            hi[~in_bounds] = 0
            return lo, hi
        lo = np.searchsorted(self.keys_sorted, probe_keys, side="left")
        hi = np.searchsorted(self.keys_sorted, probe_keys, side="right")
        return lo, hi


class _CacheEntry:
    __slots__ = ("version", "cs", "_join_indexes")

    def __init__(self, version: int, cs: ColumnSet) -> None:
        self.version = version
        self.cs = cs
        self._join_indexes: dict[str, _JoinIndex] = {}

    def join_index(self, column: str) -> _JoinIndex:
        index = self._join_indexes.get(column)
        if index is None:
            keys = self.cols_int64(column)
            index = _JoinIndex(keys, self.cs.counts)
            self._join_indexes[column] = index
        return index

    def cols_int64(self, column: str) -> "np.ndarray":
        arr = self.cs.cols[column]
        if arr.dtype != np.int64:
            raise ColumnarFallback(f"non-int64 key column {column!r}")
        return arr


class ConversionCache:
    """Session cache of relation encodings, keyed like ``PlanCache``.

    Weak relation identity -> (:attr:`StoredRelation.version`, columns,
    derived join indexes). Any mutation bumps the version and invalidates
    the entry on next access; dropped relations expire with their weak key.
    """

    def __init__(self) -> None:
        self._entries: "weakref.WeakKeyDictionary[Any, _CacheEntry]" = (
            weakref.WeakKeyDictionary()
        )
        self.hits = 0
        self.misses = 0

    def entry(self, relation: Any) -> _CacheEntry:
        version = relation.version
        cached = self._entries.get(relation)
        if cached is not None and cached.version == version:
            self.hits += 1
            return cached
        self.misses += 1
        rows, counts = relation.column_data()
        cs = ColumnSet.from_rows(rows, counts, relation.schema.names)
        cached = _CacheEntry(version, cs)
        self._entries[relation] = cached
        return cached

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0


_SESSION_CONVERSIONS = ConversionCache()


def conversion_cache() -> ConversionCache:
    """The session-wide relation conversion cache."""
    return _SESSION_CONVERSIONS


# -- vectorized scalars and predicates -----------------------------------------------


def _resolve_column(cs: ColumnSet, name: str) -> "np.ndarray":
    # Mirrors Col.eval: exact name, then unique bare-suffix match. The
    # ambiguous/missing case falls back (the compiled re-run raises the
    # reference KeyError).
    col = cs.cols.get(name)
    if col is not None:
        return col
    bare = name.rsplit(".", 1)[-1]
    matches = [k for k in cs.names if k == bare or k.rsplit(".", 1)[-1] == bare]
    if len(matches) == 1:
        return cs.cols[matches[0]]
    raise ColumnarFallback(f"column {name!r} missing or ambiguous")


def _absmax(value) -> int:
    if isinstance(value, np.ndarray):
        return int(np.abs(value).max()) if value.shape[0] else 0
    return abs(int(value))


def _scalar_vector(scalar: Scalar, cs: ColumnSet):
    """``scalar`` over every row: an int64 array, or a plain int for
    constants (broadcast by the consumer)."""
    if isinstance(scalar, Col):
        arr = _resolve_column(cs, scalar.name)
        if arr.dtype != np.int64:
            raise ColumnarFallback("non-int64 column in scalar")
        return arr
    if isinstance(scalar, Const):
        value = scalar.value
        if type(value) is not int or abs(value) >= _INT_BOUND:
            raise ColumnarFallback("non-int constant")
        return value
    if isinstance(scalar, Arith):
        if scalar.op == "/":
            # Division is always-float in the reference semantics and can
            # raise ZeroDivisionError mid-stream; the row loop preserves both.
            raise ColumnarFallback("division")
        left = _scalar_vector(scalar.left, cs)
        right = _scalar_vector(scalar.right, cs)
        lmax, rmax = _absmax(left), _absmax(right)
        if scalar.op == "+":
            if lmax + rmax >= _SAFE_BOUND:
                raise ColumnarFallback("addition overflow risk")
            return left + right
        if scalar.op == "-":
            if lmax + rmax >= _SAFE_BOUND:
                raise ColumnarFallback("subtraction overflow risk")
            return left - right
        if scalar.op == "*":
            if lmax * rmax >= _SAFE_BOUND:
                raise ColumnarFallback("multiplication overflow risk")
            return left * right
    raise ColumnarFallback(f"unsupported scalar {type(scalar).__name__}")


_CMP = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def _predicate_mask(pred: Predicate, cs: ColumnSet) -> "np.ndarray":
    """Boolean mask over all rows. And/Or evaluate every part — sound
    because supported parts are non-raising by construction (anything that
    could raise, like division, already fell back)."""
    if isinstance(pred, Compare):
        op = _CMP.get(pred.op)
        if op is None:
            raise ColumnarFallback(f"comparison {pred.op!r}")
        left = _scalar_vector(pred.left, cs)
        right = _scalar_vector(pred.right, cs)
        if not isinstance(left, np.ndarray) and not isinstance(right, np.ndarray):
            return np.full(cs.n, bool(op(left, right)))
        return op(left, right)
    if isinstance(pred, And):
        mask = np.ones(cs.n, dtype=bool)
        for part in pred.parts:
            mask &= _predicate_mask(part, cs)
        return mask
    if isinstance(pred, Or):
        return _predicate_mask(pred.left, cs) | _predicate_mask(pred.right, cs)
    if isinstance(pred, Not):
        return ~_predicate_mask(pred.inner, cs)
    if not pred.conjuncts():
        return np.ones(cs.n, dtype=bool)
    raise ColumnarFallback(f"unsupported predicate {type(pred).__name__}")


# -- operator kernels ----------------------------------------------------------------


def select_kernel(expr: Select, cs: ColumnSet) -> ColumnSet:
    if not expr.predicate.conjuncts():
        return ColumnSet(cs.names, dict(cs.cols), cs.counts)
    mask = _predicate_mask(expr.predicate, cs)
    return ColumnSet(
        cs.names,
        {name: arr[mask] for name, arr in cs.cols.items()},
        cs.counts[mask],
    )


def project_kernel(expr: Project, cs: ColumnSet) -> ColumnSet:
    names = tuple(name for name, _ in expr.outputs)
    cols: dict[str, np.ndarray] = {}
    for name, scalar in expr.outputs:
        vec = _scalar_vector(scalar, cs)
        if not isinstance(vec, np.ndarray):
            vec = np.full(cs.n, vec, dtype=np.int64)
        cols[name] = vec
    out = ColumnSet(names, cols, cs.counts)
    if expr.dedup:
        return dedup_kernel(out)
    return out


def consolidate_kernel(cs: ColumnSet) -> ColumnSet:
    """Canonicalize row identity: merge duplicate rows (segmented count
    reduction over the lexsorted order), drop zero-count rows."""
    if cs.n <= 1:
        if cs.n == 1 and int(cs.counts[0]) == 0:
            return ColumnSet(
                cs.names,
                {name: arr[:0] for name, arr in cs.cols.items()},
                cs.counts[:0],
            )
        return cs
    arrays = [_require_int64(cs.cols[name]) for name in cs.names]
    order = np.lexsort(arrays[::-1]) if arrays else np.arange(cs.n)
    sorted_cols = [arr[order] for arr in arrays]
    boundary = np.zeros(cs.n, dtype=bool)
    boundary[0] = True
    for arr in sorted_cols:
        boundary[1:] |= arr[1:] != arr[:-1]
    starts = np.nonzero(boundary)[0]
    merged = np.add.reduceat(cs.counts[order], starts)
    keep = merged != 0
    cols = {
        name: arr[starts][keep] for name, arr in zip(cs.names, sorted_cols)
    }
    return ColumnSet(cs.names, cols, merged[keep])


def _require_int64(arr: "np.ndarray") -> "np.ndarray":
    if arr.dtype != np.int64:
        raise ColumnarFallback("object-dtype column in sort-based kernel")
    return arr


def dedup_kernel(cs: ColumnSet) -> ColumnSet:
    consolidated = consolidate_kernel(cs)
    if consolidated.n and bool((consolidated.counts < 0).any()):
        # The reference raises ValueError here; let the compiled path do it.
        raise ColumnarFallback("negative counts under dedup")
    return ColumnSet(
        consolidated.names,
        consolidated.cols,
        np.ones(consolidated.n, dtype=np.int64),
    )


def _scatter_match(
    build: "np.ndarray", probe: "np.ndarray"
) -> tuple["np.ndarray", "np.ndarray"] | None:
    """Match ``probe`` values against a *unique, dense* build key with one
    direct-addressed position array (no sorting). Returns ``(build_idx,
    probe_idx)`` matched pairs, or ``None`` when the build side does not
    qualify."""
    if build.shape[0] == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    kmin = int(build.min())
    kmax = int(build.max())
    width = kmax - kmin + 1
    if width > _DENSE_SLACK * build.shape[0] + _DENSE_PAD:
        return None
    if int(np.bincount(build - kmin, minlength=width).max()) > 1:
        return None
    pos = np.full(width, -1, dtype=np.int64)
    pos[build - kmin] = np.arange(build.shape[0])
    shifted = probe - kmin
    in_bounds = (shifted >= 0) & (shifted < width)
    build_idx = pos[np.where(in_bounds, shifted, 0)]
    build_idx[~in_bounds] = -1
    valid = build_idx >= 0
    if bool(valid.all()):
        return build_idx, np.arange(probe.shape[0])
    probe_idx = np.nonzero(valid)[0]
    return build_idx[probe_idx], probe_idx


def _sort_match(
    left: "np.ndarray", right: "np.ndarray"
) -> tuple["np.ndarray", "np.ndarray"]:
    """General equi-match: stable-sort the right side, binary-search the
    left, expand match ranges. Returns matched ``(left_idx, right_idx)``."""
    order = np.argsort(right, kind="stable")
    keys_sorted = right[order]
    lo = np.searchsorted(keys_sorted, left, side="left")
    hi = np.searchsorted(keys_sorted, left, side="right")
    span = hi - lo
    total = int(span.sum())
    left_idx = np.repeat(np.arange(left.shape[0]), span)
    within = np.arange(total) - np.repeat(np.cumsum(span) - span, span)
    right_idx = order[np.repeat(lo, span) + within]
    return left_idx, right_idx


def _match_keys(
    left: "np.ndarray", right: "np.ndarray"
) -> tuple["np.ndarray", "np.ndarray"]:
    matched = _scatter_match(left, right)
    if matched is not None:
        return matched[0], matched[1]
    matched = _scatter_match(right, left)
    if matched is not None:
        return matched[1], matched[0]
    return _sort_match(left, right)


def _combine_keys(
    left_cols: list["np.ndarray"], right_cols: list["np.ndarray"]
) -> tuple["np.ndarray", "np.ndarray"]:
    """Factorize a multi-column key into one int64 code per side."""
    n_left = left_cols[0].shape[0]
    left_code = np.zeros(n_left, dtype=np.int64)
    right_code = np.zeros(right_cols[0].shape[0], dtype=np.int64)
    for left_col, right_col in zip(left_cols, right_cols):
        _, inverse = np.unique(
            np.concatenate([left_col, right_col]), return_inverse=True
        )
        base = int(inverse.max()) + 1 if inverse.shape[0] else 1
        if _absmax(left_code) * base + base >= _SAFE_BOUND:
            raise ColumnarFallback("key code overflow")
        left_code = left_code * base + inverse[:n_left].astype(np.int64)
        right_code = right_code * base + inverse[n_left:].astype(np.int64)
    return left_code, right_code


def _merge_columns(
    expr: Join,
    left: ColumnSet,
    right: ColumnSet,
    left_idx: "np.ndarray",
    right_idx: "np.ndarray",
) -> ColumnSet:
    """Assemble the canonical (name-sorted) output of a join from matched
    row-index pairs; counts multiply; residual filters vectorized."""
    left_count_max = _absmax(left.counts)
    right_count_max = _absmax(right.counts)
    if left_count_max * right_count_max >= _SAFE_BOUND:
        raise ColumnarFallback("count product overflow risk")
    names = expr.schema.names
    cols: dict[str, np.ndarray] = {}
    for name in names:
        if name in left.cols:
            cols[name] = left.cols[name][left_idx]
        else:
            cols[name] = right.cols[name][right_idx]
    counts = left.counts[left_idx] * right.counts[right_idx]
    out = ColumnSet(names, cols, counts)
    if expr.residual.conjuncts():
        mask = _predicate_mask(expr.residual, out)
        out = ColumnSet(
            names,
            {name: arr[mask] for name, arr in cols.items()},
            counts[mask],
        )
    return out


def join_kernel(expr: Join, left: ColumnSet, right: ColumnSet) -> ColumnSet:
    shared = expr.join_columns
    if not shared:
        raise ColumnarFallback("cartesian join")
    left_keys = [_require_int64(left.cols[c]) for c in shared]
    right_keys = [_require_int64(right.cols[c]) for c in shared]
    if len(shared) == 1:
        left_code, right_code = left_keys[0], right_keys[0]
    else:
        left_code, right_code = _combine_keys(left_keys, right_keys)
    left_idx, right_idx = _match_keys(left_code, right_code)
    return _merge_columns(expr, left, right, left_idx, right_idx)


def group_aggregate_kernel(expr: GroupAggregate, cs: ColumnSet) -> ColumnSet:
    if cs.n and bool((cs.counts <= 0).any()):
        # Negative net counts raise ValueError in the reference; lazily
        # unconsolidated inputs can also net to zero — both cases are the
        # compiled path's job after consolidation.
        raise ColumnarFallback("non-positive counts under aggregation")
    names = expr.schema.names
    if cs.n == 0:
        return ColumnSet(
            names,
            {name: np.empty(0, dtype=np.int64) for name in names},
            np.empty(0, dtype=np.int64),
        )
    group_cols = [_require_int64(_resolve_column(cs, g)) for g in expr.group_by]
    if group_cols:
        order = np.lexsort(group_cols[::-1])
        sorted_groups = [arr[order] for arr in group_cols]
        boundary = np.zeros(cs.n, dtype=bool)
        boundary[0] = True
        for arr in sorted_groups:
            boundary[1:] |= arr[1:] != arr[:-1]
        starts = np.nonzero(boundary)[0]
    else:
        order = np.arange(cs.n)
        sorted_groups = []
        starts = np.zeros(1, dtype=np.int64)
    counts_sorted = cs.counts[order]
    group_sizes = np.add.reduceat(counts_sorted, starts)
    total_count = int(cs.counts.sum())
    out_cols: dict[str, np.ndarray] = {}
    for name, arr in zip(expr.group_by, sorted_groups):
        out_cols[name] = arr[starts]
    for spec in expr.aggregates:
        if spec.func == "count":
            out_cols[spec.out] = group_sizes
            continue
        values = _scalar_vector(spec.arg, cs)
        if not isinstance(values, np.ndarray):
            values = np.full(cs.n, values, dtype=np.int64)
        values_sorted = values[order]
        if spec.func in ("sum", "avg"):
            if _absmax(values) * total_count >= _SAFE_BOUND:
                raise ColumnarFallback("aggregate sum overflow risk")
            sums = np.add.reduceat(values_sorted * counts_sorted, starts)
            if spec.func == "sum":
                out_cols[spec.out] = sums
            else:
                # Same float as the reference's total / n over exact ints.
                out_cols[spec.out] = sums / group_sizes
        elif spec.func == "min":
            out_cols[spec.out] = np.minimum.reduceat(values_sorted, starts)
        elif spec.func == "max":
            out_cols[spec.out] = np.maximum.reduceat(values_sorted, starts)
        else:  # pragma: no cover - operator validation precedes
            raise ColumnarFallback(f"aggregate {spec.func!r}")
    n_groups = starts.shape[0]
    return ColumnSet(
        names,
        {name: out_cols[name] for name in names},
        np.ones(n_groups, dtype=np.int64),
    )


def union_kernel(expr: Union, left: ColumnSet, right: ColumnSet) -> ColumnSet:
    names = expr.schema.names
    cols = {
        name: np.concatenate([left.cols[name], right.cols[name]]) for name in names
    }
    return ColumnSet(names, cols, np.concatenate([left.counts, right.counts]))


def difference_kernel(expr: Difference, left: ColumnSet, right: ColumnSet) -> ColumnSet:
    """Multiset monus: for each (consolidated) left row, subtract the
    matching right count and clamp at zero. Rows only on the right never
    appear — exactly :meth:`Multiset.monus`."""
    names = expr.schema.names
    left = consolidate_kernel(ColumnSet(names, {n: left.cols[n] for n in names}, left.counts))
    right = consolidate_kernel(
        ColumnSet(names, {n: right.cols[n] for n in names}, right.counts)
    )
    if left.n == 0 or right.n == 0:
        keep = left.counts > 0
        return ColumnSet(
            names, {n: left.cols[n][keep] for n in names}, left.counts[keep]
        )
    left_cols = [_require_int64(left.cols[n]) for n in names]
    right_cols = [_require_int64(right.cols[n]) for n in names]
    if len(names) == 1:
        left_code, right_code = left_cols[0], right_cols[0]
    else:
        left_code, right_code = _combine_keys(left_cols, right_cols)
    left_idx, right_idx = _match_keys(left_code, right_code)
    right_at = np.zeros(left.n, dtype=np.int64)
    right_at[left_idx] = right.counts[right_idx]
    remaining = left.counts - right_at
    keep = remaining > 0
    return ColumnSet(names, {n: left.cols[n][keep] for n in names}, remaining[keep])


# -- whole-expression evaluation -----------------------------------------------------


def _encode_scan(expr: Scan, source: Any) -> ColumnSet:
    relation = None
    get_relation = getattr(source, "relation", None)
    if get_relation is not None:
        try:
            relation = get_relation(expr.name)
        except Exception:
            relation = None
    if relation is not None and hasattr(relation, "column_data"):
        return _SESSION_CONVERSIONS.entry(relation).cs
    return ColumnSet.from_multiset(source.multiset(expr.name), expr.schema.names)


def _run_node(
    op: str,
    expr: RelExpr,
    kernel: Callable[[], ColumnSet],
    fallback: Callable[[], Multiset],
) -> ColumnSet:
    """Run one operator natively; on *any* failure fall back to the compiled
    kernel over decoded inputs (observably — see module docstring). The
    compiled re-run also reproduces reference exceptions bit-for-bit."""
    try:
        return kernel()
    except ColumnarFallback:
        pass
    except Exception:
        pass
    _count_fallback(op)
    return ColumnSet.from_multiset(fallback(), expr.schema.names)


def _eval_cs(expr: RelExpr, source: Any) -> ColumnSet:
    if isinstance(expr, Scan):
        return _encode_scan(expr, source)
    if isinstance(expr, Select):
        cs = _eval_cs(expr.input, source)
        return _run_node(
            "select",
            expr,
            lambda: select_kernel(expr, cs),
            lambda: _compile.compiled_apply_select(expr, cs.to_multiset()),
        )
    if isinstance(expr, Project):
        cs = _eval_cs(expr.input, source)
        return _run_node(
            "project",
            expr,
            lambda: project_kernel(expr, cs),
            lambda: _compile.compiled_apply_project(expr, cs.to_multiset()),
        )
    if isinstance(expr, Join):
        left = _eval_cs(expr.left, source)
        right = _eval_cs(expr.right, source)
        return _run_node(
            "join",
            expr,
            lambda: join_kernel(expr, left, right),
            lambda: _compile.compiled_apply_join(
                expr, left.to_multiset(), right.to_multiset()
            ),
        )
    if isinstance(expr, GroupAggregate):
        cs = _eval_cs(expr.input, source)
        return _run_node(
            "aggregate",
            expr,
            lambda: group_aggregate_kernel(expr, cs),
            lambda: _compile.compiled_apply_group_aggregate(expr, cs.to_multiset()),
        )
    if isinstance(expr, DuplicateElim):
        cs = _eval_cs(expr.input, source)
        return _run_node(
            "dedup",
            expr,
            lambda: dedup_kernel(cs),
            lambda: _compile.compiled_apply_dedup(cs.to_multiset()),
        )
    if isinstance(expr, Union):
        left = _eval_cs(expr.left, source)
        right = _eval_cs(expr.right, source)
        return _run_node(
            "union",
            expr,
            lambda: union_kernel(expr, left, right),
            lambda: left.to_multiset() + right.to_multiset(),
        )
    if isinstance(expr, Difference):
        left = _eval_cs(expr.left, source)
        right = _eval_cs(expr.right, source)
        return _run_node(
            "difference",
            expr,
            lambda: difference_kernel(expr, left, right),
            lambda: left.to_multiset().monus(right.to_multiset()),
        )
    raise TypeError(f"unknown operator {type(expr).__name__}")


def columnar_evaluate_native(expr: RelExpr, source: Any) -> ColumnSet:
    """Evaluate to the backend-native :class:`ColumnSet` (no decode)."""
    from repro.algebra.evaluate import MappingSource

    if isinstance(source, dict):
        source = MappingSource(source)
    return _eval_cs(expr, source)


def columnar_evaluate(expr: RelExpr, source: Any) -> Multiset:
    """Evaluate ``expr`` with the columnar backend (Multiset-returning)."""
    return columnar_evaluate_native(expr, source).to_multiset()


# -- Multiset-in/Multiset-out operator entry points (IVM runtime dispatch) -----------


def _apply_unary(op, expr, input_, kernel, fallback, in_names):
    try:
        cs = ColumnSet.from_multiset(input_, in_names)
        return kernel(cs).to_multiset()
    except ColumnarFallback:
        pass
    except Exception:
        pass
    _count_fallback(op)
    return fallback()


def apply_select_ms(expr: Select, input_: Multiset) -> Multiset:
    return _apply_unary(
        "select",
        expr,
        input_,
        lambda cs: select_kernel(expr, cs),
        lambda: _compile.compiled_apply_select(expr, input_),
        expr.input.schema.names,
    )


def apply_project_ms(expr: Project, input_: Multiset) -> Multiset:
    return _apply_unary(
        "project",
        expr,
        input_,
        lambda cs: project_kernel(expr, cs),
        lambda: _compile.compiled_apply_project(expr, input_),
        expr.input.schema.names,
    )


def apply_group_aggregate_ms(expr: GroupAggregate, input_: Multiset) -> Multiset:
    return _apply_unary(
        "aggregate",
        expr,
        input_,
        lambda cs: group_aggregate_kernel(expr, cs),
        lambda: _compile.compiled_apply_group_aggregate(expr, input_),
        expr.input.schema.names,
    )


def apply_join_ms(expr: Join, left: Multiset, right: Multiset) -> Multiset:
    try:
        left_cs = ColumnSet.from_multiset(left, expr.left.schema.names)
        right_cs = ColumnSet.from_multiset(right, expr.right.schema.names)
        return join_kernel(expr, left_cs, right_cs).to_multiset()
    except ColumnarFallback:
        pass
    except Exception:
        pass
    _count_fallback("join")
    return _compile.compiled_apply_join(expr, left, right)


def apply_dedup_ms(input_: Multiset) -> Multiset:
    try:
        rows = input_._counts
        width = len(next(iter(rows))) if rows else 0
        names = tuple(f"_{i}" for i in range(width))
        cs = ColumnSet.from_multiset(input_, names)
        return dedup_kernel(cs).to_multiset()
    except ColumnarFallback:
        pass
    except Exception:
        pass
    _count_fallback("dedup")
    return _compile.compiled_apply_dedup(input_)


# -- batched delta pipeline (stored-relation probe path) -----------------------------


def probe_join_columns(expr: Join, left_cs: ColumnSet, relation: Any) -> ColumnSet:
    """Join a delta :class:`ColumnSet` against a stored relation through its
    cached CSR join index, charging I/O exactly like ``probe_buckets``.

    All fallback-able work happens *before* any charge, so a caller that
    catches :class:`ColumnarFallback` and retries on the bucket path never
    double-charges. The expansion after the charge is purely mechanical.
    """
    shared = expr.join_columns
    if len(shared) != 1:
        raise ColumnarFallback("multi-column probe key")
    if expr.residual.conjuncts():
        raise ColumnarFallback("probe join with residual")
    column = shared[0]
    entry = _SESSION_CONVERSIONS.entry(relation)
    right_cs = entry.cs
    left_keys = left_cs.cols.get(column)
    if left_keys is None or left_keys.dtype != np.int64:
        raise ColumnarFallback("non-int64 probe key")
    index = entry.join_index(relation.schema.resolve(column))
    if _absmax(left_cs.counts) * _absmax(right_cs.counts) >= _SAFE_BOUND:
        raise ColumnarFallback("count product overflow risk")
    # probe_buckets charges one index read per *distinct* probed key
    # (misses included) and one tuple read per stored count in each hit
    # bucket; ccum answers the latter without expanding any bucket. One
    # probe over the distinct keys serves both the charge and (scattered
    # back through the inverse) the expansion.
    distinct, inverse = np.unique(left_keys, return_inverse=True)
    lo_d, hi_d = index.probe(distinct)
    matched_counts = int((index.ccum[hi_d] - index.ccum[lo_d]).sum())
    relation.counter.charge_index_read(distinct.shape[0])
    relation.counter.charge_tuple_read(matched_counts)
    lo, hi = lo_d[inverse], hi_d[inverse]
    span = hi - lo
    total = int(span.sum())
    left_idx = np.repeat(np.arange(left_keys.shape[0]), span)
    within = np.arange(total) - np.repeat(np.cumsum(span) - span, span)
    right_idx = index.order[np.repeat(lo, span) + within]
    return _merge_columns(expr, left_cs, right_cs, left_idx, right_idx)


def probe_join_net(expr: Join, left_net: Multiset, relation: Any) -> Multiset | None:
    """Maintainer-facing wrapper: Multiset in/out, ``None`` (with the
    fallback counted) when the columnar path declines — the caller then
    runs the ordinary ``probe_buckets`` path, which performs the charges."""
    try:
        left_cs = ColumnSet.from_multiset(left_net, expr.left.schema.names)
        return probe_join_columns(expr, left_cs, relation).to_multiset()
    except ColumnarFallback:
        pass
    except Exception:
        pass
    _count_fallback("probe_join")
    return None


def spine_net_native(
    spine: Sequence[Join], net: Multiset, relations: Sequence[Any]
) -> ColumnSet:
    """Thread one signed delta multiset up a left-deep join spine entirely
    in arrays: encode once, CSR-probe each stored right side, decode never.
    Charges are identical to running :func:`probe_join_net` per level.
    Raises :class:`ColumnarFallback` (before any charge at the failing
    level) when a level can't run natively."""
    if not spine:
        raise ColumnarFallback("empty spine")
    cs = ColumnSet.from_multiset(net, spine[0].left.schema.names)
    for join, relation in zip(spine, relations):
        cs = probe_join_columns(join, cs, relation)
    return cs
