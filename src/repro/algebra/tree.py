"""Expression-tree utilities: pretty printing, rewriting, inspection.

An *expression tree* in the paper's sense is just a :class:`RelExpr`; these
helpers render them (Figure 1 style), rewrite subtrees, and answer simple
structural questions used by rules and tests.
"""

from __future__ import annotations

from typing import Callable

from repro.algebra.operators import RelExpr, Scan


def render_tree(expr: RelExpr, indent: str = "  ") -> str:
    """Render an expression tree as indented text (root first).

    >>> from repro.workload.paperdb import problem_dept_tree
    >>> print(render_tree(problem_dept_tree()))  # doctest: +SKIP
    Project(DName)
      Select(SumSal > Dept.Budget)
        Aggregate(...)
          Join(Dept.DName=Emp.DName)
            Dept
            Emp
    """
    lines: list[str] = []

    def visit(node: RelExpr, depth: int) -> None:
        lines.append(f"{indent * depth}{node.label()}")
        for child in node.children:
            visit(child, depth + 1)

    visit(expr, 0)
    return "\n".join(lines)


def rewrite_bottom_up(expr: RelExpr, fn: Callable[[RelExpr], RelExpr]) -> RelExpr:
    """Rebuild the tree bottom-up, applying ``fn`` at every node.

    ``fn`` receives a node whose children have already been rewritten and
    returns a replacement (or the node itself).
    """
    children = tuple(rewrite_bottom_up(c, fn) for c in expr.children)
    if children != expr.children:
        expr = expr.with_children(children)
    return fn(expr)


def subexpressions(expr: RelExpr) -> list[RelExpr]:
    """All distinct subexpressions, children before parents."""
    seen: dict[RelExpr, None] = {}

    def visit(node: RelExpr) -> None:
        if node in seen:
            return
        for child in node.children:
            visit(child)
        seen[node] = None

    visit(expr)
    return list(seen)


def depends_on(expr: RelExpr, relation: str) -> bool:
    """Whether ``expr`` mentions the base relation ``relation``."""
    return relation in expr.base_relations()


def scan_nodes(expr: RelExpr) -> list[Scan]:
    """All Scan leaves in tree order (with duplicates, as in the tree)."""
    return [node for node in expr.walk() if isinstance(node, Scan)]
