"""Scalar expressions: column references, constants, arithmetic.

Scalar expressions appear in projection lists, aggregate arguments
(``SUM(S.Quantity * T.Price)`` in the paper's Figure 5), and inside
predicates. They are immutable and hash structurally so they can serve as
parts of memo keys in the expression DAG.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.algebra.schema import Schema
from repro.algebra.types import DataType, TypeError_, infer_type, unify_numeric


class Scalar:
    """Base class for scalar expressions."""

    def eval(self, row: Mapping[str, Any]) -> Any:
        raise NotImplementedError

    def columns(self) -> frozenset[str]:
        """All column names referenced by this expression."""
        raise NotImplementedError

    def output_type(self, schema: Schema) -> DataType:
        raise NotImplementedError

    def rename(self, mapping: Mapping[str, str]) -> "Scalar":
        """Rewrite column references through a renaming."""
        raise NotImplementedError


@dataclass(frozen=True)
class Col(Scalar):
    """Reference to a column by (possibly qualified) name."""

    name: str

    def eval(self, row: Mapping[str, Any]) -> Any:
        if self.name in row:
            return row[self.name]
        bare = self.name.rsplit(".", 1)[-1]
        matches = [k for k in row if k == bare or k.rsplit(".", 1)[-1] == bare]
        if len(matches) == 1:
            return row[matches[0]]
        raise KeyError(f"column {self.name!r} not found (or ambiguous) in row {sorted(row)}")

    def columns(self) -> frozenset[str]:
        return frozenset({self.name})

    def output_type(self, schema: Schema) -> DataType:
        return schema.dtype_of(self.name)

    def rename(self, mapping: Mapping[str, str]) -> "Col":
        return Col(mapping.get(self.name, self.name))

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const(Scalar):
    """A literal constant."""

    value: Any

    def eval(self, row: Mapping[str, Any]) -> Any:
        return self.value

    def columns(self) -> frozenset[str]:
        return frozenset()

    def output_type(self, schema: Schema) -> DataType:
        return infer_type(self.value)

    def rename(self, mapping: Mapping[str, str]) -> "Const":
        return self

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return str(self.value)


_ARITH_OPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
}


@dataclass(frozen=True)
class Arith(Scalar):
    """Binary arithmetic over numeric scalars."""

    op: str
    left: Scalar
    right: Scalar

    def __post_init__(self) -> None:
        if self.op not in _ARITH_OPS:
            raise TypeError_(f"unknown arithmetic operator {self.op!r}")

    def eval(self, row: Mapping[str, Any]) -> Any:
        return _ARITH_OPS[self.op](self.left.eval(row), self.right.eval(row))

    def columns(self) -> frozenset[str]:
        return self.left.columns() | self.right.columns()

    def output_type(self, schema: Schema) -> DataType:
        if self.op == "/":
            # SQL-style: division always yields a float in this engine.
            unify_numeric(self.left.output_type(schema), self.right.output_type(schema))
            return DataType.FLOAT
        return unify_numeric(self.left.output_type(schema), self.right.output_type(schema))

    def rename(self, mapping: Mapping[str, str]) -> "Arith":
        return Arith(self.op, self.left.rename(mapping), self.right.rename(mapping))

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


def col(name: str) -> Col:
    """Convenience constructor used throughout examples and tests."""
    return Col(name)


def lit(value: Any) -> Const:
    """Convenience constructor for constants."""
    return Const(value)
