"""Equivalence rules for DAG expansion (Section 2.1 / footnote 1 of the paper).

A rule maps an expression (whose root matches the rule's pattern) to zero or
more algebraically equivalent expressions. The DAG expander
(:mod:`repro.dag.expand`) feeds rules *shallow* trees whose leaves are
equivalence-class placeholders, so rules only inspect one or two operator
levels plus schemas.

A produced expression may have an output schema that is a *superset* of the
original's: the expression DAG applies an implicit (free) projection onto the
equivalence class's schema. Each rule guarantees that the projected multiset
equals the original — the conditions below (keys on join columns, grouping
containing join columns) are exactly what makes that true; they follow
Yan & Larson's aggregate push-down conditions, which the paper cites for
generating its Figure 1 alternatives.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.algebra.operators import (
    GroupAggregate,
    Join,
    RelExpr,
    Select,
)
from repro.algebra.predicates import Predicate, conjunction
from repro.algebra.schema import Schema


class Rule:
    """Base class for transformation rules."""

    name: str = "rule"

    def apply(self, expr: RelExpr) -> Iterable[RelExpr]:
        """Yield equivalent expressions (possibly with superset schemas)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<Rule {self.name}>"


def _covers(predicate: Predicate, schema: Schema) -> bool:
    """Whether every column the predicate mentions resolves in ``schema``."""
    return all(name in schema for name in predicate.columns())


class PushSelectBelowJoin(Rule):
    """σ_p(L ⋈ R) → σ_rest(σ_p'(L) ⋈ R): push conjuncts that mention only
    one side's columns below the join.

    Join columns are shared, so a conjunct over join columns alone pushes to
    either side; we push it left to keep the search space finite.
    """

    name = "push-select-below-join"

    def apply(self, expr: RelExpr) -> Iterable[RelExpr]:
        if not isinstance(expr, Select) or not isinstance(expr.input, Join):
            return
        join = expr.input
        left_schema, right_schema = join.left.schema, join.right.schema
        left_parts: list[Predicate] = []
        right_parts: list[Predicate] = []
        rest: list[Predicate] = []
        for part in expr.predicate.conjuncts():
            if _covers(part, left_schema):
                left_parts.append(part)
            elif _covers(part, right_schema):
                right_parts.append(part)
            else:
                rest.append(part)
        if not left_parts and not right_parts:
            return
        new_left = join.left
        if left_parts:
            new_left = Select(new_left, conjunction(left_parts))
        new_right = join.right
        if right_parts:
            new_right = Select(new_right, conjunction(right_parts))
        pushed = Join(new_left, new_right, join.residual, join.allow_cartesian)
        if rest:
            yield Select(pushed, conjunction(rest))
        else:
            yield pushed


class PullSelectAboveJoin(Rule):
    """σ_p(L) ⋈ R → σ_p(L ⋈ R): the inverse direction, so the expander can
    reach join orders hidden behind pushed selections."""

    name = "pull-select-above-join"

    def apply(self, expr: RelExpr) -> Iterable[RelExpr]:
        if not isinstance(expr, Join):
            return
        if isinstance(expr.left, Select):
            inner = Join(expr.left.input, expr.right, expr.residual, expr.allow_cartesian)
            yield Select(inner, expr.left.predicate)
        if isinstance(expr.right, Select):
            inner = Join(expr.left, expr.right.input, expr.residual, expr.allow_cartesian)
            yield Select(inner, expr.right.predicate)


class MergeSelects(Rule):
    """σ_p(σ_q(X)) → σ_{p∧q}(X)."""

    name = "merge-selects"

    def apply(self, expr: RelExpr) -> Iterable[RelExpr]:
        if isinstance(expr, Select) and isinstance(expr.input, Select):
            yield Select(
                expr.input.input, conjunction([expr.predicate, expr.input.predicate])
            )


class JoinAssociate(Rule):
    """(A ⋈ B) ⋈ C → A ⋈ (B ⋈ C).

    Natural join is associative; we only produce the re-association when the
    inner pair shares columns (no implicit cartesian products). Together with
    the unordered treatment of join operands in the DAG this reaches all
    bushy join orders.
    """

    name = "join-associate"

    def apply(self, expr: RelExpr) -> Iterable[RelExpr]:
        if not isinstance(expr, Join) or expr.residual.conjuncts():
            return
        for outer_left, outer_right in ((expr.left, expr.right), (expr.right, expr.left)):
            if not isinstance(outer_left, Join) or outer_left.residual.conjuncts():
                continue
            a, b, c = outer_left.left, outer_left.right, outer_right
            for first, second in ((a, b), (b, a)):
                shared = set(second.schema.names) & set(c.schema.names)
                if not shared:
                    continue
                inner = Join(second, c)
                outer_shared = set(first.schema.names) & set(inner.schema.names)
                if not outer_shared:
                    continue
                yield Join(first, inner)


def _group_key_of(schema: Schema, attrs: Sequence[str]) -> bool:
    return schema.has_key(attrs)


class PushAggregateBelowJoin(Rule):
    """γ_{G; aggs}(L ⋈ R) → γ_{(G∩L)∪jc; aggs}(L) ⋈ R (implicitly projected).

    This is the rule that derives the paper's Figure 1 right-hand tree (and
    hence the auxiliary view SumOfSals / N3) from the left-hand one.

    Soundness conditions (each final group corresponds to exactly one
    pre-aggregated group of L joined with at most one R tuple):

    * every aggregate argument references only ``L`` columns;
    * the join columns ``jc`` are all in the grouping set ``G``;
    * ``jc`` contains a key of ``R`` (so no multiplicity scaling from R).

    The result's schema additionally contains R's non-grouped columns; the
    DAG's implicit projection removes them.
    """

    name = "push-aggregate-below-join"

    def apply(self, expr: RelExpr) -> Iterable[RelExpr]:
        if not isinstance(expr, GroupAggregate) or not isinstance(expr.input, Join):
            return
        join = expr.input
        if join.residual.conjuncts():
            return
        jc = set(join.join_columns)
        group = set(expr.group_by)
        if not jc <= group:
            return
        for side, other in ((join.left, join.right), (join.right, join.left)):
            if not other.schema.has_key(jc):
                continue
            side_cols = set(side.schema.names)
            arg_cols: set[str] = set()
            for agg in expr.aggregates:
                if agg.arg is not None:
                    arg_cols |= agg.arg.columns()
            if not arg_cols <= side_cols:
                continue
            inner_group = tuple(sorted((group & side_cols) | jc))
            # Aggregate output names must not collide with the other side's
            # columns that survive the join.
            out_names = {a.out for a in expr.aggregates}
            if out_names & set(other.schema.names) or out_names & set(inner_group):
                continue
            pre = GroupAggregate(side, inner_group, expr.aggregates)
            yield Join(pre, other)


class PullAggregateAboveJoin(Rule):
    """γ_{G; aggs}(L) ⋈ R → γ_{G∪cols(R); aggs}(L ⋈ R): lazy aggregation,
    the inverse of :class:`PushAggregateBelowJoin`.

    Applied when a view is *written* in the pre-aggregated form (e.g.
    SumOfSals ⋈ Dept), this re-derives the aggregate-over-join alternative
    so the DAG reaches the same equivalence class either way. Conditions
    mirror the push-down rule's: the join columns lie inside the grouping
    set and contain a key of R (one R tuple per group, no multiplicity
    scaling), and R's columns don't collide with the aggregate outputs.
    """

    name = "pull-aggregate-above-join"

    def apply(self, expr: RelExpr) -> Iterable[RelExpr]:
        if not isinstance(expr, Join) or expr.residual.conjuncts():
            return
        for agg_side, other in ((expr.left, expr.right), (expr.right, expr.left)):
            if not isinstance(agg_side, GroupAggregate):
                continue
            agg = agg_side
            jc = set(agg.schema.names) & set(other.schema.names)
            group = set(agg.group_by)
            if not jc or not jc <= group:
                continue
            if not other.schema.has_key(jc):
                continue
            out_names = {a.out for a in agg.aggregates}
            if out_names & set(other.schema.names):
                continue
            # The inner join must equate exactly the same columns: if the
            # aggregate's input shares extra (grouped-away) columns with R,
            # pulling the aggregate up would change the join condition.
            if set(agg.input.schema.names) & set(other.schema.names) != jc:
                continue
            inner = Join(agg.input, other)
            new_group = tuple(sorted(group | set(other.schema.names)))
            yield GroupAggregate(inner, new_group, agg.aggregates)


def default_rules(
    enable_pull: bool = False, enable_lazy_aggregation: bool = False
) -> tuple[Rule, ...]:
    """The standard rule set.

    ``PullSelectAboveJoin`` and ``PullAggregateAboveJoin`` enlarge the DAG
    (the latter adds alternatives that are redundant modulo functional
    dependencies when the view is already written in the lazy form); both
    are opt-in and used where a view is *defined* in the pushed-down shape
    and the search should recover the canonical one.
    """
    rules: list[Rule] = [
        MergeSelects(),
        PushSelectBelowJoin(),
        JoinAssociate(),
        PushAggregateBelowJoin(),
    ]
    if enable_lazy_aggregation:
        rules.append(PullAggregateAboveJoin())
    if enable_pull:
        rules.append(PullSelectAboveJoin())
    return tuple(rules)
