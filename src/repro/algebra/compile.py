"""Row-compiled execution backend: expressions and operators → closures.

The interpreted evaluator (:mod:`repro.algebra.evaluate`) walks the scalar
and predicate trees once *per row* and materializes a ``dict(zip(names,
row))`` for every tuple it touches. This module compiles each expression
shape once per session into specialized Python functions that read tuple
positions directly:

* :func:`compile_scalar` / :func:`compile_predicate` /
  :func:`compile_row_mapper` turn expression trees into one code object
  over the row tuple — no dicts, no tree walks;
* operator kernels fuse whole Select→Project chains (and chains sitting
  directly on a Join's probe loop) into a single per-row loop;
* :class:`PlanCache` memoizes compiled artifacts keyed by the canonical
  (structurally hashed) expression, so each shape compiles once.

**Cost transparency.** Compilation never touches the storage layer: every
``IOCounter`` charge is made by exactly the same ``scan``/``lookup``/
``apply_delta`` calls as before, so measured page I/Os are bit-for-bit
identical between backends — only wall clock moves. The hypothesis property
in ``tests/property/test_compile_equivalence.py`` enforces both halves:
identical :class:`~repro.algebra.multiset.Multiset` results and identical
``IOCounter`` totals.

The interpreted path remains the reference semantics: select the backend
globally with :func:`set_default_backend` (or the ``REPRO_EXEC_BACKEND``
environment variable), or per call via ``evaluate(..., backend=...)``.
Unknown operator/scalar/predicate subclasses fall back to their
interpreted ``eval`` transparently, so third-party extensions keep working.
"""

from __future__ import annotations

import math
import os
import warnings
from typing import Any, Callable, Mapping, Sequence

from repro.algebra.multiset import Multiset, Row
from repro.algebra.operators import (
    AggSpec,
    Difference,
    DuplicateElim,
    GroupAggregate,
    Join,
    Project,
    RelExpr,
    Scan,
    Select,
    Union,
)
from repro.algebra.predicates import And, Compare, Not, Or, Predicate, TruePred
from repro.algebra.scalar import Arith, Col, Const, Scalar

Kernel = Callable[[Multiset], Multiset]
JoinKernel = Callable[[Multiset, Multiset], Multiset]


class CompileError(Exception):
    """Raised when an expression cannot be compiled (internal errors only;
    unknown node types fall back to the interpreter instead)."""


# -- backend selection ---------------------------------------------------------------

BACKENDS = ("compiled", "interpreted", "columnar")

_columnar_available: bool | None = None


def columnar_available() -> bool:
    """True when the columnar backend's numpy dependency is present.

    Checked via ``find_spec`` (not by importing the backend): the session
    backend is resolved while this module itself is still initializing, so
    importing :mod:`repro.algebra.columnar` here would re-enter the
    package's partially-initialized import chain. The real import happens
    lazily at first dispatch."""
    global _columnar_available
    if _columnar_available is None:
        import importlib.util

        _columnar_available = importlib.util.find_spec("numpy") is not None
    return _columnar_available


def _resolve_backend_choice(name: str, origin: str) -> str:
    """Degrade a ``columnar`` selection gracefully when numpy is missing:
    warn and run compiled instead of crashing the session."""
    if name == "columnar" and not columnar_available():
        warnings.warn(
            f"{origin} requested the columnar backend but numpy is not "
            "installed (pip install repro[columnar]); falling back to the "
            "compiled backend",
            RuntimeWarning,
            stacklevel=3,
        )
        return "compiled"
    return name


def _backend_from_env() -> str:
    value = os.environ.get("REPRO_EXEC_BACKEND")
    if value is None or value == "":
        return "compiled"
    if value not in BACKENDS:
        warnings.warn(
            f"ignoring unknown REPRO_EXEC_BACKEND value {value!r}; "
            f"expected one of {BACKENDS}",
            RuntimeWarning,
            stacklevel=2,
        )
        return "compiled"
    return _resolve_backend_choice(value, "REPRO_EXEC_BACKEND")


_default_backend = _backend_from_env()


def default_backend() -> str:
    """The session-wide execution backend (one of :data:`BACKENDS`)."""
    return _default_backend


def set_default_backend(name: str) -> None:
    global _default_backend
    if name not in BACKENDS:
        raise ValueError(f"unknown execution backend {name!r}; expected one of {BACKENDS}")
    _default_backend = _resolve_backend_choice(name, "set_default_backend")


# -- plan cache ----------------------------------------------------------------------


class PlanCache:
    """Session cache of compiled artifacts, keyed by canonical expression.

    Operators, predicates and scalars hash structurally (schemas are
    excluded from their identity), so two views built independently from
    the same shape share one compiled kernel. Keys are ``(tag, ...)``
    tuples to keep the different artifact kinds (plans, kernels, row
    functions) apart.
    """

    def __init__(self) -> None:
        self._plans: dict[tuple, Any] = {}
        self.hits = 0
        self.misses = 0

    def get(self, key: tuple, build: Callable[[], Any]) -> Any:
        plan = self._plans.get(key)
        if plan is not None:
            self.hits += 1
            return plan
        self.misses += 1
        plan = build()
        self._plans[key] = plan
        return plan

    def invalidate(self, key: tuple) -> bool:
        """Drop one cached artifact; returns whether it was present."""
        return self._plans.pop(key, None) is not None

    def clear(self) -> None:
        self._plans.clear()

    def reset_stats(self) -> None:
        self.hits = self.misses = 0

    def __len__(self) -> int:
        return len(self._plans)

    def __contains__(self, key: tuple) -> bool:
        return key in self._plans

    @property
    def stats(self) -> dict[str, int]:
        return {"entries": len(self._plans), "hits": self.hits, "misses": self.misses}


_SESSION_CACHE = PlanCache()


def plan_cache() -> PlanCache:
    """The process-wide plan cache (one compilation per shape per session)."""
    return _SESSION_CACHE


# -- code generation ----------------------------------------------------------------


def _raise(exc: BaseException) -> Any:
    raise exc


class _Ctx:
    """Accumulates the closure environment for one generated function."""

    def __init__(self) -> None:
        self.env: dict[str, Any] = {"_Multiset": Multiset}
        self._n = 0

    def bind(self, value: Any, prefix: str = "b") -> str:
        name = f"_{prefix}{self._n}"
        self._n += 1
        self.env[name] = value
        return name

    def fresh(self, prefix: str) -> str:
        name = f"_{prefix}{self._n}"
        self._n += 1
        return name


def _exec_fn(name: str, lines: Sequence[str], ctx: _Ctx) -> Callable:
    source = "\n".join(lines)
    code = compile(source, "<repro.algebra.compile>", "exec")
    namespace = dict(ctx.env)
    exec(code, namespace)  # noqa: S102 - self-generated trusted source
    fn = namespace[name]
    fn.__repro_source__ = source  # introspection / debugging aid
    return fn


def resolve_position(name: str, names: tuple[str, ...]) -> int | None:
    """Static replica of ``Col.eval``'s name resolution over a fixed row
    layout: exact match first, then unique bare-name (suffix) match."""
    if name in names:
        return names.index(name)
    bare = name.rsplit(".", 1)[-1]
    matches = [
        i for i, k in enumerate(names) if k == bare or k.rsplit(".", 1)[-1] == bare
    ]
    if len(matches) == 1:
        return matches[0]
    return None


class _TupleEnv:
    """Column-name resolution over a single row-tuple variable."""

    __slots__ = ("names", "rv")

    def __init__(self, names: tuple[str, ...], rv: str) -> None:
        self.names = names
        self.rv = rv

    def resolve(self, name: str) -> str | None:
        pos = resolve_position(name, self.names)
        return None if pos is None else f"{self.rv}[{pos}]"

    def mapping_src(self, ctx: _Ctx) -> str:
        nm = ctx.bind(self.names, "n")
        return f"dict(zip({nm}, {self.rv}))"

    def describe(self) -> list[str]:
        return sorted(self.names)


class _MultiEnv:
    """Column-name resolution over several bound row variables — the
    environment inside a fused join cascade, where each column reads from
    whichever operand's row variable provides it."""

    __slots__ = ("sources",)

    def __init__(self, sources: dict[str, str]) -> None:
        self.sources = sources

    def resolve(self, name: str) -> str | None:
        if name in self.sources:
            return self.sources[name]
        bare = name.rsplit(".", 1)[-1]
        matches = [
            k for k in self.sources if k == bare or k.rsplit(".", 1)[-1] == bare
        ]
        if len(matches) == 1:
            return self.sources[matches[0]]
        return None

    def mapping_src(self, ctx: _Ctx) -> str:
        items = ", ".join(f"{k!r}: {v}" for k, v in self.sources.items())
        return "{" + items + "}"

    def describe(self) -> list[str]:
        return sorted(self.sources)


def _scalar_src(scalar: Scalar, env: "_TupleEnv | _MultiEnv", ctx: _Ctx) -> str:
    if isinstance(scalar, Col):
        src = env.resolve(scalar.name)
        if src is None:
            # Mirror the interpreter: the KeyError surfaces per evaluated
            # row, not at compile time (an empty input raises nothing).
            err = ctx.bind(
                KeyError(
                    f"column {scalar.name!r} not found (or ambiguous) in row {env.describe()}"
                ),
                "e",
            )
            raiser = ctx.bind(_raise, "x")
            return f"{raiser}({err})"
        return src
    if isinstance(scalar, Const):
        value = scalar.value
        if value is None or isinstance(value, (bool, int, str)):
            return repr(value)
        if isinstance(value, float) and math.isfinite(value):
            return repr(value)
        return ctx.bind(value, "c")
    if isinstance(scalar, Arith):
        left = _scalar_src(scalar.left, env, ctx)
        right = _scalar_src(scalar.right, env, ctx)
        return f"({left} {scalar.op} {right})"
    # Unknown scalar subclass: fall back to its interpreted eval.
    fn = ctx.bind(scalar.eval, "f")
    return f"{fn}({env.mapping_src(ctx)})"


_CMP_TO_PY = {"=": "==", "!=": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">="}


def _pred_src(pred: Predicate, env: "_TupleEnv | _MultiEnv", ctx: _Ctx) -> str:
    if isinstance(pred, TruePred):
        return "True"
    if isinstance(pred, Compare):
        left = _scalar_src(pred.left, env, ctx)
        right = _scalar_src(pred.right, env, ctx)
        return f"({left} {_CMP_TO_PY[pred.op]} {right})"
    if isinstance(pred, Not):
        return f"(not {_pred_src(pred.inner, env, ctx)})"
    if isinstance(pred, And):
        if not pred.parts:
            return "True"
        return "(" + " and ".join(_pred_src(p, env, ctx) for p in pred.parts) + ")"
    if isinstance(pred, Or):
        left = _pred_src(pred.left, env, ctx)
        right = _pred_src(pred.right, env, ctx)
        return f"({left} or {right})"
    # Unknown predicate subclass: interpreted fallback.
    fn = ctx.bind(pred.eval, "f")
    return f"{fn}({env.mapping_src(ctx)})"


def _tuple_src(var: str, positions: Sequence[int]) -> str:
    return "(" + "".join(f"{var}[{i}], " for i in positions) + ")"


# -- compiled row functions ----------------------------------------------------------


def compile_scalar(scalar: Scalar, names: tuple[str, ...]) -> Callable[[Row], Any]:
    """Compile one scalar into ``row -> value`` over the given row layout."""
    ctx = _Ctx()
    src = _scalar_src(scalar, _TupleEnv(names, "_r"), ctx)
    return _exec_fn("_s", ["def _s(_r):", f"    return {src}"], ctx)


def compile_predicate(pred: Predicate, names: tuple[str, ...]) -> Callable[[Row], bool]:
    """Compile one predicate into ``row -> bool`` over the given row layout."""
    ctx = _Ctx()
    src = _pred_src(pred, _TupleEnv(names, "_r"), ctx)
    return _exec_fn("_p", ["def _p(_r):", f"    return {src}"], ctx)


def compile_row_mapper(
    outputs: tuple[tuple[str, Scalar], ...], names: tuple[str, ...]
) -> Callable[[Row], Row]:
    """Compile a projection list into ``row -> projected_row``."""
    ctx = _Ctx()
    env = _TupleEnv(names, "_r")
    srcs = "".join(f"{_scalar_src(s, env, ctx)}, " for _, s in outputs)
    return _exec_fn("_m", ["def _m(_r):", f"    return ({srcs})"], ctx)


def compile_tuple_getter(positions: Sequence[int]) -> Callable[[Row], tuple]:
    """Compile ``row -> (row[i] for i in positions)`` as one code object."""
    ctx = _Ctx()
    return _exec_fn(
        "_g", ["def _g(_r):", f"    return {_tuple_src('_r', positions)}"], ctx
    )


# -- fused operator kernels ----------------------------------------------------------


def _pipeline_body(
    ops_bottom_up: Sequence[RelExpr],
    in_names: tuple[str, ...],
    ctx: _Ctx,
    rv: str,
) -> tuple[list[str], str]:
    """Emit per-row statements applying a Select/plain-Project chain to the
    row in ``rv``; returns the statements and the final row variable."""
    lines: list[str] = []
    env = _TupleEnv(in_names, rv)
    for op in ops_bottom_up:
        if isinstance(op, Select):
            if op.predicate.conjuncts():
                lines.append(f"if not {_pred_src(op.predicate, env, ctx)}: continue")
        elif isinstance(op, Project):
            srcs = "".join(f"{_scalar_src(s, env, ctx)}, " for _, s in op.outputs)
            nrv = ctx.fresh("r")
            lines.append(f"{nrv} = ({srcs})")
            rv = nrv
            env = _TupleEnv(tuple(name for name, _ in op.outputs), nrv)
        else:  # pragma: no cover - callers only pass Select/Project
            raise CompileError(f"cannot fuse {type(op).__name__} into a pipeline")
    return lines, rv


def _compile_rowloop(ops_top_down: Sequence[RelExpr], in_names: tuple[str, ...]) -> Kernel:
    """One loop over ``(row, count)`` applying a fused unary chain."""
    ctx = _Ctx()
    body, rv = _pipeline_body(list(reversed(ops_top_down)), in_names, ctx, "_r0")
    lines = [
        "def _k(_in):",
        "    _acc = {}",
        "    _get = _acc.get",
        "    for _r0, _n in _in.items():",
        *[f"        {stmt}" for stmt in body],
        f"        _acc[{rv}] = _get({rv}, 0) + _n",
        "    _out = _Multiset()",
        "    _out._counts = {k: v for k, v in _acc.items() if v}",
        "    return _out",
    ]
    return _exec_fn("_k", lines, ctx)


def _compile_join(join: Join, ops_top_down: Sequence[RelExpr]) -> JoinKernel:
    """Hash-join kernel with the residual predicate and any Select/Project
    chain sitting above the join fused into the probe loop.

    Matches the interpreter bit for bit: build side chosen by distinct
    size, counts multiply, output columns follow the join's canonical
    order.
    """
    ctx = _Ctx()
    left_schema, right_schema = join.left.schema, join.right.schema
    shared = join.join_columns
    left_key = [left_schema.index_of(c) for c in shared]
    right_key = [right_schema.index_of(c) for c in shared]
    out_src: list[tuple[bool, int]] = []
    for name in join.schema.names:
        if name in left_schema:
            out_src.append((True, left_schema.index_of(name)))
        else:
            out_src.append((False, right_schema.index_of(name)))
    merged_names = join.schema.names
    has_residual = bool(join.residual.conjuncts())
    ops_bottom_up = list(reversed(ops_top_down))

    def key_src(var: str, idx: list[int]) -> str:
        # Single-column keys hash as bare scalars: no tuple allocation on
        # either the build or the probe side.
        if len(idx) == 1:
            return f"{var}[{idx[0]}]"
        return _tuple_src(var, idx)

    def branch(build_left: bool, build_var: str, probe_var: str) -> list[str]:
        build_idx = left_key if build_left else right_key
        probe_idx = right_key if build_left else left_key
        merged = "".join(
            (f"_b[{idx}], " if from_left == build_left else f"_p[{idx}], ")
            for from_left, idx in out_src
        )
        lines = [
            "_t = {}",
            f"for _b, _bn in {build_var}.items():",
            f"    _bk = {key_src('_b', build_idx)}",
            "    _e = _t.get(_bk)",
            "    if _e is None: _t[_bk] = [(_b, _bn)]",
            "    else: _e.append((_b, _bn))",
            "_tget = _t.get",
            f"for _p, _pn in {probe_var}.items():",
            f"    _e = _tget({key_src('_p', probe_idx)})",
            "    if _e is None: continue",
            "    for _b, _bn in _e:",
            f"        _m = ({merged})",
        ]
        inner: list[str] = []
        if has_residual:
            inner.append(
                f"if not {_pred_src(join.residual, _TupleEnv(merged_names, '_m'), ctx)}: continue"
            )
        body, rv = _pipeline_body(ops_bottom_up, merged_names, ctx, "_m")
        inner.extend(body)
        # Strip exact cancellations inline (a zero sum means the key was
        # present with the opposite count, so the del cannot miss).
        inner.append(f"_c = _get({rv}, 0) + _pn * _bn")
        inner.append(f"if _c == 0: del _acc[{rv}]")
        inner.append(f"else: _acc[{rv}] = _c")
        lines.extend(f"        {stmt}" for stmt in inner)
        return lines

    lines = [
        "def _k(_L, _R):",
        "    _acc = {}",
        "    _get = _acc.get",
        "    if _L.distinct_size <= _R.distinct_size:",
        *[f"        {stmt}" for stmt in branch(True, "_L", "_R")],
        "    else:",
        *[f"        {stmt}" for stmt in branch(False, "_R", "_L")],
        "    _out = _Multiset()",
        "    _out._counts = _acc",
        "    return _out",
    ]
    return _exec_fn("_k", lines, ctx)


def _compile_probe_join(join: Join) -> Callable[[Multiset, Mapping], Multiset]:
    """Probe-side join kernel ``(left_rows, right_buckets) -> result``.

    ``right_buckets`` maps join-key tuples (over the sorted join columns, the
    index key layout) to the bucket multisets of matching right rows — the
    shape :meth:`HashIndex.probe_buckets` returns. The index already hashed
    the right side by exactly this key, so the kernel has no build phase:
    it probes the borrowed buckets directly.
    """
    ctx = _Ctx()
    left_schema, right_schema = join.left.schema, join.right.schema
    left_key = [left_schema.index_of(c) for c in join.join_columns]
    merged = ""
    for name in join.schema.names:
        if name in left_schema:
            merged += f"_p[{left_schema.index_of(name)}], "
        else:
            merged += f"_b[{right_schema.index_of(name)}], "
    inner = [f"_m = ({merged})"]
    if join.residual.conjuncts():
        inner.append(
            f"if not {_pred_src(join.residual, _TupleEnv(join.schema.names, '_m'), ctx)}: continue"
        )
    inner.extend([
        "_c = _get(_m, 0) + _pn * _bn",
        "if _c == 0: del _acc[_m]",
        "else: _acc[_m] = _c",
    ])
    lines = [
        "def _k(_P, _B):",
        "    _acc = {}",
        "    _get = _acc.get",
        "    _bget = _B.get",
        "    for _p, _pn in _P.items():",
        f"        _e = _bget({_tuple_src('_p', left_key)})",
        "        if _e is None: continue",
        "        for _b, _bn in _e._counts.items():",
        *[f"            {stmt}" for stmt in inner],
        "    _out = _Multiset()",
        "    _out._counts = _acc",
        "    return _out",
    ]
    return _exec_fn("_k", lines, ctx)


def _join_spine(join: Join) -> tuple[list[Join], list[RelExpr]]:
    """Decompose a left-deep cascade of joins into (joins bottom-up,
    operands left-to-right). ``operands[0]`` is the leftmost non-join input
    and ``operands[i + 1]`` is ``joins[i].right`` (which may itself be any
    subtree — including a bushy right join, compiled as its own plan)."""
    joins: list[Join] = []
    node: RelExpr = join
    while isinstance(node, Join):
        joins.append(node)
        node = node.left
    joins.reverse()
    operands: list[RelExpr] = [node] + [j.right for j in joins]
    return joins, operands


def _chain_steps(
    operands: Sequence[RelExpr], order: Sequence[int]
) -> list[tuple[int, tuple[str, ...]]] | None:
    """Per-operand probe keys for one binding order, or ``None`` when a
    non-driver step would have no bound key (a cartesian blow-up).

    Natural-join semantics make all spine operands sharing a column name
    pairwise equal on it, so probing each operand on *all* of its
    already-bound columns enforces exactly the cascade's join conditions,
    in any binding order.
    """
    bound: set[str] = set()
    steps: list[tuple[int, tuple[str, ...]]] = []
    for pos, idx in enumerate(order):
        cols = set(operands[idx].schema.names)
        if pos > 0:
            key = tuple(sorted(cols & bound))
            if not key:
                return None
            steps.append((idx, key))
        else:
            steps.append((idx, ()))
        bound |= cols
    return steps


def _compile_chain_join(
    joins: Sequence[Join],
    operands: Sequence[RelExpr],
    ops_top_down: Sequence[RelExpr],
) -> Callable[..., Multiset]:
    """Fuse a left-deep join cascade into one nested probe loop.

    No intermediate multiset is ever materialized: hash tables are built on
    the non-driver operands, one driver loop chases matches through all of
    them, and only the final output tuple is constructed. When an operand's
    probe columns cover one of its candidate keys, its bucket holds a single
    ``(row, count)`` pair and the inner loop disappears entirely.

    Binding order prefers the backward chase (driver = rightmost operand),
    which in foreign-key chains makes every probe key-covered; the forward
    chase is the always-valid fallback.
    """
    k = len(operands)
    top = joins[-1]

    def key_coverage(steps: list[tuple[int, tuple[str, ...]]]) -> int:
        return sum(
            1
            for idx, key in steps[1:]
            if operands[idx].schema.has_key(key)
        )

    candidates = [
        s
        for s in (
            _chain_steps(operands, range(k - 1, -1, -1)),
            _chain_steps(operands, range(k)),
        )
        if s is not None
    ]
    steps = max(candidates, key=key_coverage)

    ctx = _Ctx()
    lines = [f"def _k({', '.join(f'_in{i}' for i in range(k))}):"]
    pad = "    "

    # Hash tables for the probed operands. A bucket is a single (row, count)
    # when the probe columns cover a candidate key of the operand (at most
    # one distinct row per key), else a list of pairs.
    singleton: dict[int, bool] = {}
    for idx, key in steps[1:]:
        schema = operands[idx].schema
        positions = [schema.index_of(c) for c in key]
        ksrc = (
            f"_r[{positions[0]}]"
            if len(positions) == 1
            else _tuple_src("_r", positions)
        )
        singleton[idx] = schema.has_key(key)
        lines.append(f"{pad}_t{idx} = {{}}")
        lines.append(f"{pad}for _r, _n in _in{idx}._counts.items():")
        if singleton[idx]:
            lines.append(f"{pad}    _t{idx}[{ksrc}] = (_r, _n)")
        else:
            lines.append(f"{pad}    _e = _t{idx}.get({ksrc})")
            lines.append(f"{pad}    if _e is None: _t{idx}[{ksrc}] = [(_r, _n)]")
            lines.append(f"{pad}    else: _e.append((_r, _n))")

    # With all-nonnegative inputs no contribution can cancel, so the final
    # zero-strip pass (needed for signed deltas) is skipped.
    ins = ", ".join(f"_in{i}" for i in range(k))
    lines.append(
        f"{pad}_neg = any(min(_m._counts.values(), default=0) < 0 for _m in ({ins},))"
    )
    lines.append(f"{pad}_acc = {{}}")
    lines.append(f"{pad}_get = _acc.get")

    # Residual predicates fire at the earliest step where all their columns
    # are bound.
    residuals = [j.residual for j in joins if j.residual.conjuncts()]
    pending = list(residuals)
    sources: dict[str, str] = {}

    def bind_operand(idx: int) -> None:
        schema = operands[idx].schema
        for pos, name in enumerate(schema.names):
            sources.setdefault(name, f"_r{idx}[{pos}]")

    def ready_residual_lines(depth: str) -> list[str]:
        env = _MultiEnv(sources)
        out = []
        for pred in list(pending):
            if all(env.resolve(c) is not None for c in pred.columns()):
                pending.remove(pred)
                out.append(f"{depth}if not {_pred_src(pred, env, ctx)}: continue")
        return out

    driver = steps[0][0]
    bind_operand(driver)
    lines.append(f"{pad}for _r{driver}, _n{driver} in _in{driver}._counts.items():")
    depth = pad + "    "
    lines.extend(ready_residual_lines(depth))
    count_var = f"_n{driver}"
    for idx, key in steps[1:]:
        env = _MultiEnv(sources)
        key_parts = [sources[c] for c in key]
        ksrc = key_parts[0] if len(key_parts) == 1 else "(" + ", ".join(key_parts) + ",)"
        lines.append(f"{depth}_e{idx} = _t{idx}.get({ksrc})")
        lines.append(f"{depth}if _e{idx} is None: continue")
        if singleton[idx]:
            lines.append(f"{depth}_r{idx}, _n{idx} = _e{idx}")
        else:
            lines.append(f"{depth}for _r{idx}, _n{idx} in _e{idx}:")
            depth += "    "
        nc = ctx.fresh("c")
        lines.append(f"{depth}{nc} = {count_var} * _n{idx}")
        count_var = nc
        bind_operand(idx)
        lines.extend(ready_residual_lines(depth))

    merged = "".join(f"{sources[name]}, " for name in top.schema.names)
    mv = ctx.fresh("m")
    lines.append(f"{depth}{mv} = ({merged})")
    body, rv = _pipeline_body(
        list(reversed(ops_top_down)), top.schema.names, ctx, mv
    )
    lines.extend(f"{depth}{stmt}" for stmt in body)
    lines.append(f"{depth}_acc[{rv}] = _get({rv}, 0) + {count_var}")

    lines.append(f"{pad}_out = _Multiset()")
    lines.append(f"{pad}if _neg:")
    lines.append(f"{pad}    _out._counts = {{k: v for k, v in _acc.items() if v}}")
    lines.append(f"{pad}else:")
    lines.append(f"{pad}    _out._counts = _acc")
    lines.append(f"{pad}return _out")
    return _exec_fn("_k", lines, ctx)


def _dedup_ms(ms: Multiset) -> Multiset:
    counts = ms._counts
    for value in counts.values():
        if value < 0:
            raise ValueError("cannot deduplicate a multiset with negative counts")
    out = Multiset()
    out._counts = {row: 1 for row, value in counts.items() if value > 0}
    return out


def _compile_aggregate(expr: GroupAggregate) -> Kernel:
    in_names = expr.input.schema.names
    in_schema = expr.input.schema
    keyf = compile_tuple_getter([in_schema.index_of(g) for g in expr.group_by])
    agg_fns = [_compile_agg_fn(spec, in_names) for spec in expr.aggregates]
    grand = not expr.group_by

    def _k(input_: Multiset) -> Multiset:
        counts = input_._counts
        for value in counts.values():
            if value < 0:
                raise ValueError("cannot aggregate a multiset with negative counts")
        groups: dict[tuple, list[tuple[Row, int]]] = {}
        get = groups.get
        for row, count in counts.items():
            key = keyf(row)
            entry = get(key)
            if entry is None:
                groups[key] = [(row, count)]
            else:
                entry.append((row, count))
        out = Multiset()
        if grand and not groups:
            # Grand aggregate over empty input: no row (GROUP BY semantics),
            # mirroring the interpreter.
            return out
        oc = out._counts
        for key, rows in groups.items():
            oc[key + tuple(fn(rows) for fn in agg_fns)] = 1
        return out

    return _k


def _compile_agg_fn(
    spec: AggSpec, names: tuple[str, ...]
) -> Callable[[list[tuple[Row, int]]], Any]:
    """One aggregate over a group's ``(row, count)`` list, folding in the
    same order as the interpreter (bit-identical floats)."""
    if spec.func == "count":
        # COUNT(arg) and COUNT(*) both sum the counts; the interpreter's
        # per-row arg evaluation contributes nothing to the result.
        def _count(rows: list[tuple[Row, int]]) -> int:
            return sum(count for _, count in rows)

        return _count
    assert spec.arg is not None
    argf = compile_scalar(spec.arg, names)
    if spec.func == "sum":

        def _sum(rows: list[tuple[Row, int]]) -> Any:
            total = 0
            for row, count in rows:
                total += argf(row) * count
            return total

        return _sum
    if spec.func == "avg":

        def _avg(rows: list[tuple[Row, int]]) -> Any:
            total = 0
            n = 0
            for row, count in rows:
                total += argf(row) * count
                n += count
            return total / n

        return _avg
    if spec.func == "min":
        return lambda rows: min(argf(row) for row, _ in rows)
    if spec.func == "max":
        return lambda rows: max(argf(row) for row, _ in rows)
    raise CompileError(f"unknown aggregate function {spec.func!r}")  # pragma: no cover


# -- whole-plan compilation ----------------------------------------------------------


def _plan(expr: RelExpr) -> Callable[[Any], Multiset]:
    return _SESSION_CACHE.get(("plan", expr), lambda: _build_plan(expr))


def _build_plan(expr: RelExpr) -> Callable[[Any], Multiset]:
    if isinstance(expr, Scan):
        name = expr.name
        return lambda source: source.multiset(name)
    if isinstance(expr, Project) and expr.dedup:
        inner = _plan(Project(expr.input, expr.outputs, dedup=False))
        return lambda source: _dedup_ms(inner(source))
    if isinstance(expr, (Select, Project)):
        ops: list[RelExpr] = []
        node: RelExpr = expr
        while isinstance(node, Select) or (isinstance(node, Project) and not node.dedup):
            ops.append(node)
            node = node.input
        if isinstance(node, Join):
            return _build_join_plan(node, ops)
        child = _plan(node)
        loop = _compile_rowloop(ops, node.schema.names)
        return lambda source: loop(child(source))
    if isinstance(expr, Join):
        return _build_join_plan(expr, ())
    if isinstance(expr, GroupAggregate):
        agg = _compile_aggregate(expr)
        child = _plan(expr.input)
        return lambda source: agg(child(source))
    if isinstance(expr, DuplicateElim):
        child = _plan(expr.input)
        return lambda source: _dedup_ms(child(source))
    if isinstance(expr, Union):
        left, right = _plan(expr.left), _plan(expr.right)
        return lambda source: left(source) + right(source)
    if isinstance(expr, Difference):
        left, right = _plan(expr.left), _plan(expr.right)
        return lambda source: left(source).monus(right(source))
    # Unknown operator subclass: evaluate this subtree with the interpreter
    # (which raises its own TypeError for truly unknown nodes).

    def _fallback(source: Any) -> Multiset:
        from repro.algebra.evaluate import _eval

        return _eval(expr, source)

    return _fallback


def _build_join_plan(
    join: Join, ops_top_down: Sequence[RelExpr]
) -> Callable[[Any], Multiset]:
    joins, operands = _join_spine(join)
    if len(operands) >= 3:
        kernel = _compile_chain_join(joins, operands, ops_top_down)
        children = [_plan(o) for o in operands]
        return lambda source: kernel(*[c(source) for c in children])
    kernel = _compile_join(join, ops_top_down)
    left, right = _plan(join.left), _plan(join.right)
    return lambda source: kernel(left(source), right(source))


class CompiledPlan:
    """A compiled operator tree; call it with a relation source."""

    __slots__ = ("expr", "_fn")

    def __init__(self, expr: RelExpr, fn: Callable[[Any], Multiset]) -> None:
        self.expr = expr
        self._fn = fn

    def __call__(self, source: Any) -> Multiset:
        if isinstance(source, Mapping):
            from repro.algebra.evaluate import MappingSource

            source = MappingSource(source)
        return self._fn(source)

    def __repr__(self) -> str:
        return f"<CompiledPlan {self.expr}>"


def compile_plan(expr: RelExpr) -> CompiledPlan:
    """Compile a whole operator tree (cached) into an executable plan."""
    return CompiledPlan(expr, _plan(expr))


def compiled_evaluate(expr: RelExpr, source: Any) -> Multiset:
    """Evaluate ``expr`` with the compiled backend (plans cached per shape)."""
    if isinstance(source, Mapping):
        from repro.algebra.evaluate import MappingSource

        source = MappingSource(source)
    return _plan(expr)(source)


# -- backend-dispatching operator kernels (the IVM runtime's entry points) -----------


def _build_select_kernel(expr: Select) -> Kernel:
    if not expr.predicate.conjuncts():
        return lambda ms: ms.copy()
    return _compile_rowloop([expr], expr.input.schema.names)


def compiled_apply_select(expr: Select, input_: Multiset) -> Multiset:
    """The compiled select kernel, unconditionally (columnar falls back here)."""
    return _SESSION_CACHE.get(("select", expr), lambda: _build_select_kernel(expr))(input_)


def apply_select(expr: Select, input_: Multiset) -> Multiset:
    if _default_backend == "interpreted":
        from repro.algebra.evaluate import eval_select

        return eval_select(expr, input_)
    if _default_backend == "columnar":
        from repro.algebra import columnar

        return columnar.apply_select_ms(expr, input_)
    return compiled_apply_select(expr, input_)


def _build_project_kernel(expr: Project) -> Kernel:
    plain = _compile_rowloop(
        [expr if not expr.dedup else Project(expr.input, expr.outputs, dedup=False)],
        expr.input.schema.names,
    )
    if expr.dedup:
        return lambda ms: _dedup_ms(plain(ms))
    return plain


def compiled_apply_project(expr: Project, input_: Multiset) -> Multiset:
    """The compiled project kernel, unconditionally (columnar falls back here)."""
    return _SESSION_CACHE.get(("project", expr), lambda: _build_project_kernel(expr))(input_)


def apply_project(expr: Project, input_: Multiset) -> Multiset:
    if _default_backend == "interpreted":
        from repro.algebra.evaluate import eval_project

        return eval_project(expr, input_)
    if _default_backend == "columnar":
        from repro.algebra import columnar

        return columnar.apply_project_ms(expr, input_)
    return compiled_apply_project(expr, input_)


def compiled_apply_join(expr: Join, left: Multiset, right: Multiset) -> Multiset:
    """The compiled join kernel, unconditionally (columnar falls back here)."""
    kernel = _SESSION_CACHE.get(("join", expr), lambda: _compile_join(expr, ()))
    return kernel(left, right)


def apply_join(expr: Join, left: Multiset, right: Multiset) -> Multiset:
    if _default_backend == "interpreted":
        from repro.algebra.evaluate import eval_join

        return eval_join(expr, left, right)
    if _default_backend == "columnar":
        from repro.algebra import columnar

        return columnar.apply_join_ms(expr, left, right)
    return compiled_apply_join(expr, left, right)


def apply_join_fetched(
    expr: Join, left: Multiset, right_buckets: Mapping
) -> Multiset:
    """Join ``left`` against index buckets fetched for its keys.

    ``right_buckets`` is the borrowed ``{join_key: bucket}`` mapping of
    :meth:`HashIndex.probe_buckets` (keys over the sorted join columns).
    The compiled kernel probes the buckets in place; the interpreted
    reference flattens them (distinct keys have disjoint buckets) and joins
    normally. Results are bit-identical, and no I/O is charged here — the
    fetch already paid for every bucket.
    """
    if _default_backend == "interpreted":
        from repro.algebra.evaluate import eval_join

        right = Multiset()
        counts = right._counts
        for bucket in right_buckets.values():
            counts.update(bucket._counts)
        return eval_join(expr, left, right)
    kernel = _SESSION_CACHE.get(
        ("probe_join", expr), lambda: _compile_probe_join(expr)
    )
    return kernel(left, right_buckets)


def compiled_apply_group_aggregate(expr: GroupAggregate, input_: Multiset) -> Multiset:
    """The compiled aggregate kernel, unconditionally (columnar falls back here)."""
    return _SESSION_CACHE.get(("aggregate", expr), lambda: _compile_aggregate(expr))(input_)


def apply_group_aggregate(expr: GroupAggregate, input_: Multiset) -> Multiset:
    if _default_backend == "interpreted":
        from repro.algebra.evaluate import eval_group_aggregate

        return eval_group_aggregate(expr, input_)
    if _default_backend == "columnar":
        from repro.algebra import columnar

        return columnar.apply_group_aggregate_ms(expr, input_)
    return compiled_apply_group_aggregate(expr, input_)


def compiled_apply_dedup(input_: Multiset) -> Multiset:
    """The compiled dedup kernel, unconditionally (columnar falls back here)."""
    return _dedup_ms(input_)


def apply_dedup(input_: Multiset) -> Multiset:
    if _default_backend == "interpreted":
        from repro.algebra.evaluate import eval_dedup

        return eval_dedup(input_)
    if _default_backend == "columnar":
        from repro.algebra import columnar

        return columnar.apply_dedup_ms(input_)
    return _dedup_ms(input_)


# -- backend-dispatching row functions ----------------------------------------------


def row_predicate(pred: Predicate, names: tuple[str, ...]) -> Callable[[Row], bool]:
    """``row -> bool`` for one predicate over a fixed layout (backend-aware)."""
    if _default_backend == "interpreted":
        return lambda row: pred.eval(dict(zip(names, row)))
    return _SESSION_CACHE.get(
        ("pred", pred, names), lambda: compile_predicate(pred, names)
    )


def row_mapper(
    outputs: tuple[tuple[str, Scalar], ...], names: tuple[str, ...]
) -> Callable[[Row], Row]:
    """``row -> projected_row`` for a projection list (backend-aware)."""
    if _default_backend == "interpreted":
        return lambda row: tuple(
            scalar.eval(dict(zip(names, row))) for _, scalar in outputs
        )
    return _SESSION_CACHE.get(
        ("mapper", outputs, names), lambda: compile_row_mapper(outputs, names)
    )


def scalar_fn(scalar: Scalar, names: tuple[str, ...]) -> Callable[[Row], Any]:
    """``row -> value`` for one scalar over a fixed layout (backend-aware)."""
    if _default_backend == "interpreted":
        return lambda row: scalar.eval(dict(zip(names, row)))
    return _SESSION_CACHE.get(
        ("scalar", scalar, names), lambda: compile_scalar(scalar, names)
    )


def aggregate_fn(
    spec: AggSpec, names: tuple[str, ...]
) -> Callable[[list[tuple[Row, int]]], Any]:
    """One aggregate over a group's ``(row, count)`` list (backend-aware)."""
    if _default_backend == "interpreted":
        from repro.algebra.evaluate import compute_aggregate

        return lambda rows: compute_aggregate(spec, rows, names)
    return _SESSION_CACHE.get(
        ("agg", spec, names), lambda: _compile_agg_fn(spec, names)
    )


def tuple_getter(positions: Sequence[int]) -> Callable[[Row], tuple]:
    """Compiled positional extractor (backend-independent: same semantics,
    used by both backends' runtime plumbing)."""
    key = ("getter", tuple(positions))
    return _SESSION_CACHE.get(key, lambda: compile_tuple_getter(positions))
