"""Structured tracing for the maintenance pipeline.

A :class:`Tracer` records a tree of :class:`Span` events — transaction →
policy decision → per-track-op delta propagation → per-view apply →
assertion check — each carrying its scoped :class:`IOStats` (measured by
diffing the shared :class:`~repro.storage.pager.IOCounter`, exactly like
the engine's per-transaction attribution) and wall-clock time.

Two invariants make traces trustworthy:

* *tie-out*: a span's ``io`` is inclusive of its children, so the sum of
  root-span I/Os equals the counter delta over the traced region, and
  ``exclusive_io`` (own minus children) partitions every charged page I/O
  into exactly one span;
* *zero cost when off*: the default :data:`NULL_TRACER` returns a shared
  no-op span, so instrumented code paths pay one attribute lookup and an
  empty ``with`` block — no snapshots, no allocation per span.

``trace_to_json`` / ``validate_trace`` define the on-disk format the CLI's
``run --trace out.json`` emits and CI validates.
"""

from __future__ import annotations

import time
from typing import Any, Iterator

from repro.storage.pager import IOCounter, IOStats

TRACE_VERSION = 1


class Span:
    """One traced region; a context manager that measures I/O and time."""

    __slots__ = ("name", "attrs", "children", "io", "seconds", "_tracer", "_before", "_started")

    def __init__(self, name: str, attrs: dict[str, Any], tracer: "Tracer") -> None:
        self.name = name
        self.attrs = attrs
        self.children: list[Span] = []
        self.io = IOStats()
        self.seconds = 0.0
        self._tracer = tracer
        self._before: IOStats | None = None
        self._started = 0.0

    def annotate(self, **attrs: Any) -> "Span":
        """Attach extra attributes (outcome, counts, …) to an open span."""
        self.attrs.update(attrs)
        return self

    @property
    def exclusive_io(self) -> IOStats:
        """This span's I/O minus its children's — the pages charged *here*."""
        own = self.io
        for child in self.children:
            own = own - child.io
        return own

    def walk(self) -> Iterator["Span"]:
        """This span and all descendants, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __enter__(self) -> "Span":
        tracer = self._tracer
        if tracer._stack:
            tracer._stack[-1].children.append(self)
        else:
            tracer.roots.append(self)
        tracer._stack.append(self)
        if tracer.counter is not None:
            self._before = tracer.counter.snapshot()
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.seconds = time.perf_counter() - self._started
        tracer = self._tracer
        if tracer.counter is not None and self._before is not None:
            self.io = tracer.counter.snapshot() - self._before
        assert tracer._stack and tracer._stack[-1] is self, "span nesting corrupted"
        tracer._stack.pop()
        if exc_type is not None:
            self.attrs.setdefault("outcome", "error")

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "attrs": {k: _jsonable(v) for k, v in self.attrs.items()},
            "seconds": self.seconds,
            "io": {
                "index_reads": self.io.index_reads,
                "index_writes": self.io.index_writes,
                "tuple_reads": self.io.tuple_reads,
                "tuple_writes": self.io.tuple_writes,
                "total": self.io.total,
            },
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:
        return f"<Span {self.name} io={self.io.total} children={len(self.children)}>"


class _NullSpan:
    """The shared do-nothing span returned by :class:`NullTracer`."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None

    def annotate(self, **attrs: Any) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Tracing disabled: every span is the shared no-op instance."""

    __slots__ = ()
    enabled = False
    roots: tuple = ()

    def bind(self, counter: IOCounter) -> None:
        return None

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def reset(self) -> None:
        return None


NULL_TRACER = NullTracer()


class Tracer:
    """Records span trees against one I/O counter.

    ``counter`` may be bound later (``bind``) — the engine binds its
    database counter when the tracer is attached. Spans opened with no
    counter bound measure wall time only (``io`` stays zero).
    """

    enabled = True

    def __init__(self, counter: IOCounter | None = None) -> None:
        self.counter = counter
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    def bind(self, counter: IOCounter) -> None:
        """Attach the counter spans measure against (first bind wins)."""
        if self.counter is None:
            self.counter = counter

    def span(self, name: str, **attrs: Any) -> Span:
        """Open a new span (use as a context manager)."""
        return Span(name, attrs, self)

    def reset(self) -> None:
        """Drop all recorded spans (open spans must have exited)."""
        assert not self._stack, "cannot reset with open spans"
        self.roots.clear()

    def find(self, name: str) -> list[Span]:
        """All recorded spans with ``name``, pre-order across roots."""
        return [s for root in self.roots for s in root.walk() if s.name == name]

    def total_io(self) -> IOStats:
        """Sum of root-span I/O — ties out to the counter delta over the
        traced region (asserted in tests and in bench_trace_overhead)."""
        total = IOStats()
        for root in self.roots:
            total = total + root.io
        return total


def _jsonable(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


def trace_to_json(tracer: Tracer) -> dict[str, Any]:
    """The emitted trace document (see ``validate_trace`` for the schema)."""
    total = tracer.total_io()
    return {
        "version": TRACE_VERSION,
        "io_total": total.total,
        "spans": [root.to_dict() for root in tracer.roots],
    }


_IO_FIELDS = ("index_reads", "index_writes", "tuple_reads", "tuple_writes")


def validate_trace(doc: Any) -> None:
    """Validate a trace document against the schema; raises ValueError.

    Checks structure (version, span fields, recursive children), value
    sanity (non-negative integer I/O counts, non-negative seconds,
    ``total`` consistent with the four kinds) and the containment
    invariant (a parent span's I/O covers the sum of its children's —
    guaranteed by the monotonic counter when spans nest properly).
    """
    if not isinstance(doc, dict):
        raise ValueError("trace document must be an object")
    if doc.get("version") != TRACE_VERSION:
        raise ValueError(f"unsupported trace version {doc.get('version')!r}")
    spans = doc.get("spans")
    if not isinstance(spans, list):
        raise ValueError("trace 'spans' must be a list")
    total = 0
    for span in spans:
        total += _validate_span(span, path="spans")["total"]
    if doc.get("io_total") != total:
        raise ValueError(
            f"io_total {doc.get('io_total')!r} != sum of root spans {total}"
        )


def _validate_span(span: Any, path: str) -> dict[str, int]:
    if not isinstance(span, dict):
        raise ValueError(f"{path}: span must be an object")
    name = span.get("name")
    if not isinstance(name, str) or not name:
        raise ValueError(f"{path}: span name must be a non-empty string")
    where = f"{path}/{name}"
    if not isinstance(span.get("attrs"), dict):
        raise ValueError(f"{where}: attrs must be an object")
    seconds = span.get("seconds")
    if not isinstance(seconds, (int, float)) or seconds < 0:
        raise ValueError(f"{where}: seconds must be a non-negative number")
    io = span.get("io")
    if not isinstance(io, dict):
        raise ValueError(f"{where}: io must be an object")
    for kind in _IO_FIELDS:
        v = io.get(kind)
        if not isinstance(v, int) or isinstance(v, bool) or v < 0:
            raise ValueError(f"{where}: io.{kind} must be a non-negative int")
    if io.get("total") != sum(io[k] for k in _IO_FIELDS):
        raise ValueError(f"{where}: io.total inconsistent with per-kind counts")
    children = span.get("children")
    if not isinstance(children, list):
        raise ValueError(f"{where}: children must be a list")
    child_sums = dict.fromkeys(_IO_FIELDS, 0)
    for child in children:
        child_io = _validate_span(child, where)
        for kind in _IO_FIELDS:
            child_sums[kind] += child_io[kind]
    for kind in _IO_FIELDS:
        if child_sums[kind] > io[kind]:
            raise ValueError(
                f"{where}: children charge more io.{kind} than the parent"
            )
    return io
