"""Observability: structured tracing, metrics, and EXPLAIN ANALYZE.

The tracer records a span tree per commit (transaction → policy decision →
per-track-op propagation → per-view apply → assertion check), each span
carrying its scoped page I/O and wall time; per-span I/Os tie out exactly
to the engine's :class:`~repro.storage.pager.IOCounter`. The default
:data:`NULL_TRACER` makes every instrumentation point a no-op.
"""

from repro.obs.metrics import METRICS, Counter, Gauge, Histogram, MetricsRegistry, get_metrics
from repro.obs.trace import (
    NULL_TRACER,
    TRACE_VERSION,
    NullTracer,
    Span,
    Tracer,
    trace_to_json,
    validate_trace,
)


def __getattr__(name):
    # explain/explain_analyze depend on the optimizer and maintainer layers,
    # which themselves import repro.obs.trace — loading them eagerly here
    # would make every `import repro.obs.trace` circular. Resolve lazily,
    # rebinding the function over the same-named submodule attribute.
    if name in ("explain", "explain_analyze"):
        import importlib

        mod = importlib.import_module("repro.obs.explain")
        globals()["explain"] = mod.explain
        globals()["explain_analyze"] = mod.explain_analyze
        return globals()[name]
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "METRICS",
    "NULL_TRACER",
    "TRACE_VERSION",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullTracer",
    "Span",
    "Tracer",
    "explain",
    "explain_analyze",
    "get_metrics",
    "trace_to_json",
    "validate_trace",
]
