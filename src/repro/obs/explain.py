"""EXPLAIN / EXPLAIN ANALYZE for update tracks.

``explain`` renders the maintenance plan the optimizer chose for a
transaction type — the update track as an annotated tree with the
analytic cost (the paper's Section 3.6 :class:`PageIOCostModel`) of every
maintenance query and view update. ``explain_analyze`` *executes* a
transaction under a fresh :class:`~repro.obs.trace.Tracer` and renders the
same tree with the estimated and measured columns side by side, where the
measured numbers come from the trace's per-span I/O and tie out bit-exactly
to the commit's ``TransactionResult.io`` (asserted in tests).

This is the live version of the paper's Tables 1–3: query costs per track
op, update costs per materialized view, totals per transaction.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.report import describe_marking
from repro.dag.queries import derive_queries
from repro.obs.trace import Tracer
from repro.storage.pager import IOStats
from repro.workload.transactions import Transaction, TransactionType

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.core.tracks import UpdateTrack
    from repro.engine.engine import Engine, TransactionResult
    from repro.ivm.maintainer import ViewMaintainer


class _Measured:
    """Per-phase I/O recovered from one commit's "txn" span."""

    def __init__(self) -> None:
        self.track_ops: dict[int, IOStats] = {}
        self.view_applies: dict[int, IOStats] = {}
        self.base_applies: dict[str, IOStats] = {}
        self.checks = IOStats()
        self.total = IOStats()

    @classmethod
    def from_span(cls, span) -> "_Measured":
        m = cls()
        m.total = span.io
        for s in span.walk():
            if s.name == "track_op":
                gid = s.attrs.get("node")
                m.track_ops[gid] = m.track_ops.get(gid, IOStats()) + s.io
            elif s.name == "view_apply":
                gid = s.attrs.get("node")
                m.view_applies[gid] = m.view_applies.get(gid, IOStats()) + s.io
            elif s.name == "base_apply":
                rel = s.attrs.get("relation")
                m.base_applies[rel] = m.base_applies.get(rel, IOStats()) + s.io
            elif s.name == "assertion_check":
                m.checks = m.checks + s.io
        return m


def _cell(value: float | int | None, width: int = 10) -> str:
    if value is None:
        return "—".rjust(width)
    if isinstance(value, float):
        return f"{value:.2f}".rjust(width)
    return str(value).rjust(width)


def _render(
    maintainer: "ViewMaintainer",
    txn_type: TransactionType,
    track: "UpdateTrack",
    measured: _Measured | None,
    header: str,
) -> str:
    memo = maintainer.memo
    marking = maintainer.marking
    cost_model = maintainer.cost_model
    estimator = maintainer.estimator
    analyze = measured is not None

    lines = [header]
    lines.append("materialized views:")
    for gid, line in describe_marking(maintainer.dag, marking):
        lines.append(f"  {line}")

    col_header = f"{'est I/O':>10}"
    if analyze:
        col_header += f"  {'measured':>10}"
    lines.append("")
    lines.append(f"update track ({len(track)} ops):{'':<14}{col_header}")

    all_queries = []
    for gid in sorted(track):
        op = track[gid]
        queries = derive_queries(memo, op, txn_type, marking, estimator)
        all_queries.extend(queries)
        est_op = float(sum(cost_model.query_cost(q, marking, txn_type) for q in queries))
        label = f"  N{memo.find(op.group_id)} ← {op.label()}"
        row = f"{label:<40}{_cell(est_op)}"
        if analyze:
            io = measured.track_ops.get(memo.find(gid))
            row += f"  {_cell(io.total if io is not None else None)}"
        lines.append(row)
        for q in queries:
            q_cost = cost_model.query_cost(q, marking, txn_type)
            lines.append(f"      {q.describe(memo)} — {q_cost:.2f} I/Os")
    if not track:
        lines.append("  (no affected materialized views)")

    lines.append("view updates:")
    est_update_total = 0.0
    for gid in sorted(marking):
        if memo.group(gid).is_leaf:
            continue
        if not estimator.affected(gid, txn_type):
            continue
        est_u = cost_model.update_cost(gid, txn_type)
        est_update_total += est_u
        note = ""
        if est_u == 0.0:
            note = " (uncharged)"
        row = f"  {'N%d%s' % (gid, note):<38}{_cell(est_u)}"
        if analyze:
            io = measured.view_applies.get(gid)
            row += f"  {_cell(io.total if io is not None else None)}"
        lines.append(row)

    if analyze and measured.base_applies:
        charged = maintainer.charge_base_updates
        names = ", ".join(sorted(measured.base_applies))
        base_total = sum(
            (io.total for io in measured.base_applies.values()), 0
        )
        suffix = "" if charged else " (uncharged)"
        row = f"  {'base: %s%s' % (names, suffix):<38}{_cell(None)}"
        row += f"  {_cell(base_total)}"
        lines.append(row)
    if analyze:
        row = f"  {'assertion check':<38}{_cell(None)}"
        row += f"  {_cell(measured.checks.total)}"
        lines.append(row)

    # The MQO total can be below the per-op sum (shared queries answered
    # once); the displayed per-query costs are pre-sharing.
    est_query_total = cost_model.total_query_cost(all_queries, marking, txn_type)
    est_total = est_query_total + est_update_total
    total_row = (
        f"  {'total (MQO query + update)':<38}{_cell(est_total)}"
    )
    if analyze:
        total_row += f"  {_cell(measured.total.total)}"
    lines.append(total_row)
    if analyze:
        lines.append(
            f"commit I/O: {measured.total} — ties out to the commit's IOCounter delta"
        )
        cache = maintainer.last_cache_stats
        if cache is not None and (cache.hits or cache.misses):
            lines.append(
                f"commit cache: {cache.describe()} — measured I/O can sit "
                "below the estimates (see docs/cost_model.md)"
            )
        durable = getattr(maintainer.db, "durable", None)
        if durable is not None and durable.last_commit_stats is not None:
            d = durable.last_commit_stats
            lookups = d["pool_hits"] + d["pool_misses"]
            rate = d["pool_hits"] / lookups if lookups else 0.0
            lines.append(
                f"buffer pool: {d['pool_hits']} hits / {d['pool_misses']} "
                f"misses ({rate:.0%}), {d['evictions']} evicted; pages r/w "
                f"{d['page_reads']}/{d['page_writes']}; wal {d['wal_records']} "
                f"records / {d['wal_bytes']} B / {d['fsyncs']} fsyncs — "
                "actual pager traffic, separate from the simulated "
                "accounting above"
            )
    return "\n".join(lines)


def explain(maintainer: "ViewMaintainer", txn_name: str) -> str:
    """Render the chosen update track for a declared transaction type with
    the cost model's estimates (no execution)."""
    txn_type = maintainer.txn_types.get(txn_name)
    if txn_type is None:
        known = ", ".join(sorted(maintainer.txn_types))
        raise KeyError(f"unknown transaction type {txn_name!r} (declared: {known})")
    track = maintainer.tracks.get(txn_name, {})
    return _render(
        maintainer, txn_type, track, None, header=f"=== EXPLAIN {txn_name} ==="
    )


def explain_analyze(
    engine: "Engine", txn: Transaction
) -> "tuple[str, TransactionResult]":
    """Execute ``txn`` through the engine under a fresh tracer and render
    estimated vs measured cost per track op / view / phase.

    Returns ``(rendered text, TransactionResult)``. The transaction *is*
    committed (this is EXPLAIN ANALYZE, not EXPLAIN). An enforcing policy
    that rejects the transaction propagates its
    :class:`AssertionViolation` after the engine's usual atomic rollback.
    """
    tracer = Tracer(engine.db.counter)
    previous = engine.tracer
    engine.set_tracer(tracer)
    try:
        result = engine.execute(txn)
    finally:
        engine.set_tracer(previous)

    header = f"=== EXPLAIN ANALYZE {txn.type_name} ==="
    if result.deferred:
        text = "\n".join(
            [
                header,
                f"transaction queued by {type(engine.policy).__name__} "
                f"({engine.pending} pending); maintenance I/O will be "
                "attributed to the flushing commit",
            ]
        )
        return text, result

    plan = engine.maintainer.last_plan
    if plan is None:  # pragma: no cover - empty transactions short-circuit
        return "\n".join([header, "no maintenance work recorded"]), result
    txn_type, track = plan
    txn_spans = [s for s in tracer.roots if s.name == "txn"]
    measured = (
        _Measured.from_span(txn_spans[-1]) if txn_spans else _Measured()
    )
    text = _render(engine.maintainer, txn_type, track, measured, header=header)
    return text, result
