"""Process-wide runtime metrics for the maintenance engine.

A :class:`MetricsRegistry` holds named counters (monotonic), gauges (last
value wins) and histograms (count / total / min / max). The engine layer
increments commits, rollbacks, deferrals and violations, attributes page
I/Os by kind, and snapshots cache hit rates from the optimizer's
:class:`~repro.core.memoize.SearchCache` and the execution backend's
:class:`~repro.algebra.compile.PlanCache`.

Metrics are bookkeeping only — they never touch the storage layer, so they
add zero page I/O to any measured run. The module-level :func:`get_metrics`
registry is shared process-wide (every :class:`~repro.engine.engine.Engine`
uses it unless given its own), which is what the shell's ``\\metrics``
command and :attr:`StreamReport.metrics` read. Benchmarks that need
isolation pass a private registry.
"""

from __future__ import annotations

from repro.storage.pager import IOStats


class Counter:
    """A monotonically increasing named count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A named value where the latest observation wins (cache sizes, …)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"<Gauge {self.name}={self.value}>"


class Histogram:
    """Aggregated distribution of observed values."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def __repr__(self) -> str:
        return f"<Histogram {self.name} n={self.count} mean={self.mean:.2f}>"


class MetricsRegistry:
    """Named counters, gauges and histograms with snapshot/delta support."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- access ------------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name)
        return h

    # -- engine helpers ----------------------------------------------------------

    def observe_io(self, io: IOStats) -> None:
        """Attribute a commit's page I/O by kind (paper §3.6 ledger)."""
        if io.index_reads:
            self.counter("io.index_reads").inc(io.index_reads)
        if io.index_writes:
            self.counter("io.index_writes").inc(io.index_writes)
        if io.tuple_reads:
            self.counter("io.tuple_reads").inc(io.tuple_reads)
        if io.tuple_writes:
            self.counter("io.tuple_writes").inc(io.tuple_writes)

    def observe_cache(self, name: str, hits: int, misses: int) -> None:
        """Record a cache's cumulative hit/miss counts (and hit rate)."""
        self.gauge(f"cache.{name}.hits").set(hits)
        self.gauge(f"cache.{name}.misses").set(misses)
        lookups = hits + misses
        self.gauge(f"cache.{name}.hit_rate").set(hits / lookups if lookups else 0.0)

    # -- reporting ---------------------------------------------------------------

    def snapshot(self) -> dict[str, float]:
        """A flat name → value map of everything recorded so far."""
        out: dict[str, float] = {}
        for name, c in self._counters.items():
            out[name] = c.value
        for name, g in self._gauges.items():
            out[name] = g.value
        for name, h in self._histograms.items():
            out[f"{name}.count"] = h.count
            out[f"{name}.total"] = h.total
            if h.min is not None:
                out[f"{name}.min"] = h.min
                out[f"{name}.max"] = h.max
        return out

    def since(self, before: dict[str, float]) -> dict[str, float]:
        """What changed relative to an earlier :meth:`snapshot`.

        Counters and histogram count/total entries difference cleanly;
        gauges and histogram min/max report their current value (a delta
        of a last-value-wins metric is meaningless).
        """
        now = self.snapshot()
        out: dict[str, float] = {}
        for name, value in now.items():
            if name in self._gauges or name.endswith((".min", ".max")):
                if value != before.get(name):
                    out[name] = value
            else:
                delta = value - before.get(name, 0)
                if delta:
                    out[name] = delta
        return out

    def render(self) -> list[str]:
        """Human-readable lines, grouped and sorted by name."""
        lines = []
        for name in sorted(self._counters):
            lines.append(f"{name}: {self._counters[name].value}")
        for name in sorted(self._gauges):
            value = self._gauges[name].value
            text = f"{value:.3f}" if isinstance(value, float) and value != int(value) else f"{value:g}"
            lines.append(f"{name}: {text}")
        for name in sorted(self._histograms):
            h = self._histograms[name]
            lines.append(
                f"{name}: n={h.count} mean={h.mean:.2f} "
                f"min={h.min if h.min is not None else '-'} "
                f"max={h.max if h.max is not None else '-'}"
            )
        return lines

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


METRICS = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-wide registry (shell ``\\metrics``, CLI, runner)."""
    return METRICS
