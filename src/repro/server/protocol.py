"""The wire protocol: one JSON object per line, UTF-8, newline-delimited.

Chosen for the same reason the shell speaks SQL text: it is trivially
scriptable (``nc``-able, even) and every language has a JSON codec.

Requests are objects with an ``op``:

``{"op": "sql", "q": "<statement>"}``
    One SQL statement. DML becomes a single-statement transaction through
    the commit queue; SELECT runs as a snapshot read at a pinned epoch.
``{"op": "txn", "statements": ["<dml>", ...]}``
    Several DML statements staged and committed as **one** transaction
    (all-or-nothing through the group committer).
``{"op": "ping"}`` / ``{"op": "metrics"}`` / ``{"op": "quit"}``
    Liveness, a metrics snapshot, and an orderly goodbye.

Responses always carry ``ok``:

``{"ok": true, ...payload...}``
    ``rows``/``columns`` for SELECT, ``status`` for DML ("committed" or
    "deferred"), ``batch`` (the group-commit batch sequence) when known.
``{"ok": false, "error": "<kind>", "message": "..."}``
    ``error`` is ``"rejected"`` (constraint violation), ``"invalid"``
    (parse/semantic error in the request), or ``"internal"``.
"""

from __future__ import annotations

import json
from typing import Any

#: Upper bound on one protocol line (requests and responses). Bounded so a
#: misbehaving peer cannot balloon the server's read buffer.
MAX_LINE = 1 << 20


class ProtocolError(Exception):
    """A malformed frame (not valid JSON, not an object, or oversized)."""


def encode(message: dict[str, Any]) -> bytes:
    """Serialize one message to its wire frame (JSON + ``\\n``)."""
    frame = json.dumps(message, separators=(",", ":"), default=str).encode("utf-8")
    if len(frame) + 1 > MAX_LINE:
        raise ProtocolError(f"frame of {len(frame)} bytes exceeds MAX_LINE")
    return frame + b"\n"


def decode(line: bytes) -> dict[str, Any]:
    """Parse one wire frame; raises :class:`ProtocolError` on garbage."""
    if len(line) > MAX_LINE:
        raise ProtocolError(f"frame of {len(line)} bytes exceeds MAX_LINE")
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(f"frame must be a JSON object, got {type(message).__name__}")
    return message


def ok(**payload: Any) -> dict[str, Any]:
    """An ``ok`` response with the given payload fields."""
    response: dict[str, Any] = {"ok": True}
    response.update(payload)
    return response


def error(kind: str, message: str) -> dict[str, Any]:
    """An error response; ``kind`` is rejected / invalid / internal."""
    return {"ok": False, "error": kind, "message": message}
