"""Concurrent multi-client front-end: socket server + group commit.

The engine is single-writer by design (one latch, one undo journal); this
package makes that safe to share. Writers submit ready-made transactions
to a bounded commit queue; a single commit thread drains the queue in
batches, composes same-shaped staged deltas from many clients with
:func:`~repro.ivm.deferred.compose_deltas`, and runs **one** maintenance
pass — and, when durable, one WAL barrier/fsync — per batch (the paper's
§2.3 deferral, finally paying off *across* clients). Readers never wait:
they pin an epoch and reconstruct their snapshot from the epoch log's
inverse deltas (``Engine.select(expr, epoch=...)``).

Layers:

* :mod:`repro.server.commit` — :class:`GroupCommitter`, the single-writer
  commit queue and batch composer (usable without any networking).
* :mod:`repro.server.protocol` — the line-delimited JSON wire protocol.
* :mod:`repro.server.server` — the asyncio socket server.
* :mod:`repro.server.client` — a blocking client library.
"""

from repro.server.client import ClientError, ReproClient
from repro.server.commit import (
    BatchRecord,
    CommitRequest,
    GroupCommitter,
    compose_batch,
    replay_batches,
)
from repro.server.protocol import MAX_LINE, ProtocolError, decode, encode
from repro.server.server import ReproServer, run_server

__all__ = [
    "BatchRecord",
    "ClientError",
    "CommitRequest",
    "GroupCommitter",
    "MAX_LINE",
    "ProtocolError",
    "ReproClient",
    "ReproServer",
    "compose_batch",
    "decode",
    "encode",
    "replay_batches",
    "run_server",
]
