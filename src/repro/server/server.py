"""The asyncio socket server: many clients, one engine, one committer.

Connections are cheap asyncio tasks; every write funnels into the
:class:`~repro.server.commit.GroupCommitter`'s bounded queue (blocking
work — the commit wait, delta derivation under the storage latch — runs
in the default executor so the event loop never stalls on the engine).
Reads pin an epoch and run as snapshot selects, so a long SELECT neither
blocks nor is torn by concurrent group commits.

``python -m repro serve`` wraps :func:`run_server`.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Any

from repro.constraints.assertions import AssertionSystem, AssertionViolation
from repro.engine.engine import Engine, EngineError
from repro.ivm.delta import Delta
from repro.ivm.maintainer import MaintenanceError
from repro.obs.metrics import get_metrics
from repro.server import protocol
from repro.server.commit import GroupCommitter
from repro.server.protocol import ProtocolError
from repro.sql import ast
from repro.sql.dml import dml_to_delta, is_dml
from repro.sql.lexer import SQLSyntaxError
from repro.sql.parser import parse
from repro.sql.translate import SQLTranslationError, _translate_select
from repro.storage.database import Database
from repro.storage.relation import StorageError
from repro.workload.transactions import Transaction, paper_transactions

#: Exceptions reported as the client's fault (``error: "invalid"``).
_INVALID = (
    ProtocolError,
    SQLSyntaxError,
    SQLTranslationError,
    StorageError,
    EngineError,
    MaintenanceError,
    ValueError,
    KeyError,
    TypeError,
)


class ReproServer:
    """A maintained corporate database behind a TCP listener.

    Builds the same world as the shell — the paper's corporate data with
    the DeptConstraint assertion — an engine under the requested policy,
    and a started :class:`GroupCommitter`. ``port=0`` binds an ephemeral
    port (read it back from ``self.port`` after :meth:`start`).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        policy: str = "immediate",
        batch_size: int | None = None,
        durable_path: str | None = None,
        wal_sync: str | None = None,
        n_depts: int = 50,
        emps_per_dept: int = 10,
        seed: int = 0,
        max_batch: int = 32,
        queue_size: int = 256,
    ) -> None:
        from repro.shell import DEPT_CONSTRAINT
        from repro.workload.paperdb import (
            DEPT_SCHEMA,
            EMP_SCHEMA,
            generate_corporate_db,
        )

        self.host = host
        self.port = port
        self.metrics = get_metrics()
        self.db = Database(durable_path=durable_path, wal_sync=wal_sync)
        if "Emp" not in self.db:
            data = generate_corporate_db(
                n_depts, emps_per_dept, seed=seed, budget_range=(800, 1200)
            )
            self.db.create_relation(
                "Dept", DEPT_SCHEMA, data["Dept"], indexes=[["DName"]]
            )
            self.db.create_relation("Emp", EMP_SCHEMA, data["Emp"], indexes=[["DName"]])
        system = AssertionSystem(
            self.db,
            [DEPT_CONSTRAINT],
            paper_transactions(),
            enforce=(policy == "enforce"),
        )
        if policy == "deferred":
            from repro.engine.policy import DeferredPolicy

            self.engine = Engine(
                system.maintainer,
                policy=DeferredPolicy(batch_size=batch_size),
                assertion_roots=system.roots,
            )
        elif policy in ("immediate", "enforce"):
            self.engine = system.engine
        else:
            raise ValueError(f"unknown maintenance policy {policy!r}")
        self.policy = policy
        self._schemas = {"Dept": DEPT_SCHEMA, "Emp": EMP_SCHEMA}
        self.committer = GroupCommitter(
            self.engine, max_batch=max_batch, queue_size=queue_size
        )
        self._conn_ids = itertools.count(1)
        self._server: asyncio.base_events.Server | None = None

    # -- lifecycle ---------------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener and start the commit thread."""
        self.committer.start()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port, limit=protocol.MAX_LINE
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Close the listener, drain the commit queue, flush, checkpoint."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.committer.close)
        self.db.close()

    # -- connection handling -----------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = next(self._conn_ids)
        self.metrics.counter("server.connections").inc()
        txn_seq = itertools.count(1)
        loop = asyncio.get_running_loop()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(
                        protocol.encode(
                            protocol.error("invalid", "request line too long")
                        )
                    )
                    await writer.drain()
                    break
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                self.metrics.counter("server.requests").inc()
                try:
                    request = protocol.decode(line)
                    # Engine work (parse, latch, commit wait) stays off the
                    # event loop: other connections keep multiplexing while
                    # this one's request runs in the executor.
                    response = await loop.run_in_executor(
                        None, self._dispatch, request, conn, txn_seq
                    )
                except AssertionViolation as exc:
                    self.metrics.counter("server.rejected").inc()
                    response = protocol.error("rejected", str(exc))
                except _INVALID as exc:
                    self.metrics.counter("server.errors").inc()
                    response = protocol.error("invalid", str(exc))
                except Exception as exc:  # noqa: BLE001 - connection boundary
                    self.metrics.counter("server.errors").inc()
                    response = protocol.error("internal", repr(exc))
                writer.write(protocol.encode(response))
                await writer.drain()
                if request_is_quit(response):
                    break
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - peer reset
                pass

    # -- request dispatch (runs in the executor) ---------------------------------

    def _dispatch(
        self, request: dict[str, Any], conn: int, txn_seq: "itertools.count"
    ) -> dict[str, Any]:
        op = request.get("op")
        if op == "ping":
            return protocol.ok(pong=True, epoch=self.engine.epoch)
        if op == "quit":
            return protocol.ok(bye=True)
        if op == "metrics":
            return protocol.ok(metrics=self.metrics.snapshot())
        if op == "sql":
            return self._run_sql(str(request.get("q", "")), conn, txn_seq)
        if op == "txn":
            statements = request.get("statements")
            if not isinstance(statements, list) or not statements:
                raise ProtocolError("txn op needs a non-empty 'statements' list")
            return self._run_txn([str(s) for s in statements], conn, txn_seq)
        raise ProtocolError(f"unknown op {op!r}")

    def _run_sql(
        self, text: str, conn: int, txn_seq: "itertools.count"
    ) -> dict[str, Any]:
        statement = parse(text)
        if is_dml(statement):
            return self._commit([statement], conn, txn_seq)
        if isinstance(statement, ast.SelectStmt):
            return self._run_select(statement)
        raise ProtocolError("only SELECT and DML statements are supported")

    def _run_txn(
        self, statements: list[str], conn: int, txn_seq: "itertools.count"
    ) -> dict[str, Any]:
        parsed = [parse(s) for s in statements]
        for statement in parsed:
            if not is_dml(statement):
                raise ProtocolError("txn op accepts DML statements only")
        return self._commit(parsed, conn, txn_seq)

    def _commit(
        self, statements: list, conn: int, txn_seq: "itertools.count"
    ) -> dict[str, Any]:
        """Derive deltas, submit one transaction, wait for its batch."""
        from repro.ivm.deferred import compose_deltas

        staged: dict[str, list[Delta]] = {}
        # UPDATE/DELETE row sets are derived from current contents, so the
        # derivation must see a consistent state: take the storage latch
        # for the whole read.
        with self.db.latch:
            for statement in statements:
                relation, delta = dml_to_delta(statement, self.db)
                if not delta.is_empty:
                    staged.setdefault(relation, []).append(delta)
        deltas = {}
        for relation, parts in staged.items():
            composed = compose_deltas(self.db.relation(relation).schema, parts)
            if not composed.is_empty:
                deltas[relation] = composed
        if not deltas:
            return protocol.ok(status="committed", empty=True)
        txn = Transaction(f"__c{conn}_{next(txn_seq)}", deltas)
        result = self.committer.execute(txn)
        return protocol.ok(
            status="deferred" if result.deferred else "committed",
            batch=result.batch,
            violations=sorted(result.new_violations),
        )

    def _run_select(self, statement: ast.SelectStmt) -> dict[str, Any]:
        expr = _translate_select(statement, self._schemas, ())
        epoch = self.engine.pin_epoch()
        try:
            result, io = self.engine.select(expr, epoch=epoch)
        finally:
            self.engine.unpin_epoch(epoch)
        rows = sorted(result.expand())
        return protocol.ok(
            columns=list(expr.schema.names),
            rows=[list(row) for row in rows],
            io=io.total,
            epoch=epoch,
        )


def request_is_quit(response: dict[str, Any]) -> bool:
    return bool(response.get("bye"))


def run_server(
    host: str = "127.0.0.1",
    port: int = 0,
    policy: str = "immediate",
    batch_size: int | None = None,
    durable_path: str | None = None,
    wal_sync: str | None = None,
    max_batch: int = 32,
    seed: int = 0,
) -> int:
    """Blocking entry point behind ``python -m repro serve``.

    Prints ``listening on HOST:PORT`` once bound (tests parse this line
    to find an ephemeral port), then serves until interrupted.
    """

    async def _main() -> None:
        server = ReproServer(
            host=host,
            port=port,
            policy=policy,
            batch_size=batch_size,
            durable_path=durable_path,
            wal_sync=wal_sync,
            max_batch=max_batch,
            seed=seed,
        )
        await server.start()
        print(f"listening on {server.host}:{server.port}", flush=True)
        try:
            await server.serve_forever()
        except asyncio.CancelledError:  # pragma: no cover - shutdown race
            pass
        finally:
            await server.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
    return 0
