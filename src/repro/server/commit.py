"""Group commit: a single-writer thread draining a bounded commit queue.

Clients (server connections, the multi-client workload driver, tests)
submit ready-made :class:`~repro.workload.transactions.Transaction`
objects and block on a per-request event. The committer thread drains the
queue in batches, composes each batch's deltas into **one** transaction
with :func:`~repro.ivm.deferred.compose_deltas`, and commits it through
the engine's ordinary policy pipeline — one maintenance pass (and, when
durable, one WAL barrier/fsync) no matter how many clients rode along.

Failure isolation: a composed batch that raises (an
:class:`~repro.constraints.assertions.AssertionViolation` under
``EnforcingPolicy``, or any storage error) falls back to per-client
replay, so only the offending client is rejected while innocent
bystanders in the same batch still commit.

Every batch is recorded as a :class:`BatchRecord`; :func:`replay_batches`
re-commits the recorded batch sequence through a fresh engine on the
caller's thread — the deterministic serial schedule the concurrent run is
equivalent to, used by the property tests and the benchmark to check
bit-identity.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.engine.engine import EngineError, TransactionResult
from repro.ivm.deferred import compose_deltas
from repro.ivm.delta import Delta
from repro.obs.metrics import MetricsRegistry, get_metrics
from repro.workload.transactions import Transaction

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.engine.engine import Engine
    from repro.storage.database import Database


def compose_batch(
    db: "Database", txns: Sequence[Transaction], name: str
) -> Transaction | None:
    """Compose many transactions' deltas into one net transaction.

    Mirrors ``DeferredMaintainer.compose``: per relation (sorted, so the
    apply order is hash-seed independent) the sequential deltas are
    net-composed and delete+insert pairs sharing a candidate key re-paired
    into modifications. Returns ``None`` when everything cancels — a
    cancelling batch costs zero I/O and every rider commits trivially.
    """
    combined: dict[str, Delta] = {}
    for relation in sorted({r for t in txns for r in t.deltas}):
        schema = db.relation(relation).schema
        composed = compose_deltas(
            schema, (t.deltas.get(relation, Delta()) for t in txns)
        )
        if not composed.is_empty:
            combined[relation] = composed
    if not combined:
        return None
    return Transaction(name, combined)


@dataclass
class CommitRequest:
    """One client's submitted transaction, awaiting its batch."""

    txn: Transaction
    submitted_at: float = field(default_factory=time.monotonic)
    resolved_at: float | None = None
    result: TransactionResult | None = None
    error: BaseException | None = None
    _done: threading.Event = field(default_factory=threading.Event, repr=False)

    def resolve(self, result: TransactionResult) -> None:
        self.result = result
        self.resolved_at = time.monotonic()
        self._done.set()

    def fail(self, error: BaseException) -> None:
        self.error = error
        self.resolved_at = time.monotonic()
        self._done.set()

    def wait(self, timeout: float | None = None) -> TransactionResult:
        """Block until the committer resolves this request; re-raises the
        per-client error (e.g. an ``AssertionViolation``) on rejection."""
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"commit of {self.txn.type_name!r} did not resolve in {timeout}s"
            )
        if self.error is not None:
            raise self.error
        assert self.result is not None
        return self.result

    @property
    def latency(self) -> float | None:
        """Submit-to-resolve wall time in seconds (None while pending)."""
        if self.resolved_at is None:
            return None
        return self.resolved_at - self.submitted_at


@dataclass
class BatchRecord:
    """What one drained batch did — the serial-schedule witness.

    ``txns`` preserves queue (arrival) order; replaying the records in
    sequence through a fresh engine is *the* serial permutation the
    concurrent run claims equivalence with.
    """

    seq: int
    txns: tuple[Transaction, ...]
    replayed: bool = False  # composed commit failed; fell back to per-client
    empty: bool = False  # batch deltas cancelled to nothing
    results: list[TransactionResult] = field(default_factory=list)
    #: the composed commit's own result (None for empty or replayed
    #: batches) — carries the batch's maintenance I/O exactly once, where
    #: per-rider results carry none.
    batch_result: TransactionResult | None = None

    @property
    def size(self) -> int:
        return len(self.txns)

    @property
    def txn_names(self) -> tuple[str, ...]:
        return tuple(t.type_name for t in self.txns)


_SHUTDOWN = object()


class GroupCommitter:
    """The single-writer commit thread over a bounded queue.

    Usage::

        committer = GroupCommitter(engine, max_batch=32)
        committer.start()
        try:
            request = committer.submit(txn)   # any thread
            result = request.wait()
        finally:
            committer.close()                 # drains, then flushes policy

    The queue is bounded (queue-based load leveling): when ``queue_size``
    requests are in flight, ``submit`` blocks, back-pressuring producers
    instead of growing memory without bound.
    """

    def __init__(
        self,
        engine: "Engine",
        max_batch: int = 32,
        queue_size: int = 256,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if max_batch < 1:
            raise EngineError("max_batch must be positive")
        self.engine = engine
        self.max_batch = max_batch
        self.metrics = metrics if metrics is not None else get_metrics()
        self._queue: queue.Queue = queue.Queue(maxsize=max(queue_size, 1))
        self._thread: threading.Thread | None = None
        self._closed = False
        self._batch_seq = 0
        self.batches: list[BatchRecord] = []
        self.tail_result: TransactionResult | None = None

    # -- producer side -----------------------------------------------------------

    def start(self) -> "GroupCommitter":
        if self._thread is not None:
            raise EngineError("committer already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-group-commit", daemon=True
        )
        self._thread.start()
        return self

    def submit(self, txn: Transaction, timeout: float | None = None) -> CommitRequest:
        """Enqueue one transaction; returns its pending :class:`CommitRequest`.

        Blocks when the queue is full (bounded back-pressure). Raises
        :class:`EngineError` once the committer is closed.
        """
        if self._closed:
            raise EngineError("committer is closed")
        request = CommitRequest(txn)
        self._queue.put(request, timeout=timeout)
        self.metrics.counter("commit_queue.submitted").inc()
        return request

    def execute(self, txn: Transaction, timeout: float | None = None) -> TransactionResult:
        """Submit and wait — the blocking convenience used by clients."""
        return self.submit(txn, timeout=timeout).wait(timeout)

    def close(self, flush: bool = True, timeout: float | None = None) -> None:
        """Stop accepting work, drain the queue, join the thread, then (by
        default) flush the policy's deferred tail on the caller's thread;
        the tail's result lands in ``tail_result``."""
        if self._closed:
            return
        self._closed = True
        if self._thread is not None:
            self._queue.put(_SHUTDOWN)
            self._thread.join(timeout)
            self._thread = None
        if flush:
            self.tail_result = self.engine.flush()

    # -- committer thread --------------------------------------------------------

    def _run(self) -> None:
        while True:
            first = self._queue.get()
            if first is _SHUTDOWN:
                return
            batch = [first]
            while len(batch) < self.max_batch:
                try:
                    item = self._queue.get_nowait()
                except queue.Empty:
                    break
                if item is _SHUTDOWN:
                    self._commit_batch(batch)
                    return
                batch.append(item)
            self.metrics.gauge("commit_queue.depth").set(self._queue.qsize())
            self._commit_batch(batch)

    def _commit_batch(self, requests: list[CommitRequest]) -> None:
        """Compose, commit once, distribute per-client results; on failure
        replay per client so only the violator is rejected."""
        engine = self.engine
        self._batch_seq += 1
        seq = self._batch_seq
        record = BatchRecord(seq=seq, txns=tuple(r.txn for r in requests))
        self.batches.append(record)
        self.metrics.counter("commit_queue.batches").inc()
        self.metrics.histogram("commit_queue.batch_size").observe(len(requests))
        with engine.tracer.span("group_commit", batch=seq, size=len(requests)):
            composed = compose_batch(engine.db, record.txns, f"__group_{seq}")
            if composed is None:
                # The riders' deltas cancelled each other: nothing reaches
                # storage, everyone committed (net effect of the batch is
                # the empty transaction).
                record.empty = True
                for request in requests:
                    result = TransactionResult(
                        txn=request.txn, committed=True, batch=seq
                    )
                    record.results.append(result)
                    request.resolve(result)
                return
            try:
                batch_result = engine.execute(composed)
            except Exception:
                self._replay(record, requests)
                return
            for request in requests:
                result = TransactionResult(
                    txn=request.txn,
                    committed=True,
                    deferred=batch_result.deferred,
                    batch=seq,
                )
                record.results.append(result)
                request.resolve(result)
            # The batch's maintenance I/O and violation report belong to
            # the composed commit, not to any single rider; keep them on
            # the record for the report/bench layer to fold exactly once.
            record.batch_result = batch_result

    def _replay(self, record: BatchRecord, requests: list[CommitRequest]) -> None:
        """Per-client fallback: the composed commit failed (it already
        rolled the database back), so commit each rider individually and
        reject only the ones that fail on their own."""
        record.replayed = True
        self.metrics.counter("commit_queue.replays").inc()
        for request in requests:
            try:
                result = self.engine.execute(request.txn)
            except Exception as exc:  # AssertionViolation, storage errors
                request.fail(exc)
            else:
                result.batch = record.seq
                record.results.append(result)
                request.resolve(result)


def replay_batches(
    engine: "Engine", batches: Iterable[BatchRecord]
) -> tuple[list[BatchRecord], TransactionResult | None]:
    """Re-commit a recorded batch sequence serially on the caller's thread.

    Runs each recorded batch through an unstarted committer's
    ``_commit_batch`` (same compose, same fallback), then flushes the
    policy tail — the deterministic serial schedule a live concurrent run
    must be bit-identical to. Returns (replayed records, tail result).
    """
    oracle = GroupCommitter(engine)
    for record in batches:
        oracle._commit_batch([CommitRequest(t) for t in record.txns])
    tail = engine.flush()
    return oracle.batches, tail
