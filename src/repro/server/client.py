"""A small blocking client for the repro server.

The protocol is line-delimited JSON (see :mod:`repro.server.protocol`),
so the client is deliberately boring: one socket, one file handle, one
request/response per call. Thread-safety is per-instance (each thread
should open its own client), mirroring one-connection-per-session.

Usage::

    with ReproClient("127.0.0.1", 4957) as c:
        c.execute("INSERT INTO Emp VALUES ('e1', 'Toy', 55)")
        rows = c.query("SELECT DName FROM Dept")
"""

from __future__ import annotations

import socket
from typing import Any

from repro.server import protocol


class ClientError(Exception):
    """A request the server answered with ``ok: false``."""

    def __init__(self, kind: str, message: str) -> None:
        super().__init__(f"{kind}: {message}")
        self.kind = kind
        self.message = message


class ReproClient:
    """One connection to a :class:`~repro.server.server.ReproServer`."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 0, timeout: float | None = 30.0
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rb")

    # -- raw request/response ----------------------------------------------------

    def request(self, message: dict[str, Any]) -> dict[str, Any]:
        """Send one request and read its response (raises nothing on
        ``ok: false`` — callers that want exceptions use the helpers)."""
        self._sock.sendall(protocol.encode(message))
        line = self._file.readline(protocol.MAX_LINE)
        if not line:
            raise ConnectionError("server closed the connection")
        return protocol.decode(line)

    def _checked(self, message: dict[str, Any]) -> dict[str, Any]:
        response = self.request(message)
        if not response.get("ok"):
            raise ClientError(
                response.get("error", "internal"), response.get("message", "")
            )
        return response

    # -- convenience helpers -----------------------------------------------------

    def ping(self) -> int:
        """Liveness check; returns the server's current commit epoch."""
        return int(self._checked({"op": "ping"})["epoch"])

    def query(self, sql: str) -> list[tuple]:
        """Run a SELECT (snapshot read); returns sorted rows as tuples."""
        response = self._checked({"op": "sql", "q": sql})
        return [tuple(row) for row in response.get("rows", [])]

    def execute(self, sql: str) -> dict[str, Any]:
        """Run one DML statement; returns the full response payload
        (``status``, ``batch``, ``violations``). Raises :class:`ClientError`
        with ``kind="rejected"`` when the enforcing policy rolls it back."""
        return self._checked({"op": "sql", "q": sql})

    def transaction(self, statements: list[str]) -> dict[str, Any]:
        """Commit several DML statements as one atomic transaction."""
        return self._checked({"op": "txn", "statements": statements})

    def metrics(self) -> dict[str, Any]:
        """The server's metrics snapshot."""
        return self._checked({"op": "metrics"})["metrics"]

    def close(self) -> None:
        try:
            self._sock.sendall(protocol.encode({"op": "quit"}))
            self._file.readline(protocol.MAX_LINE)
        except OSError:
            pass
        finally:
            self._file.close()
            self._sock.close()

    def __enter__(self) -> "ReproClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
