"""The transactional engine layer: one lifecycle for every write path.

``Engine`` wraps a materialized :class:`~repro.ivm.maintainer.ViewMaintainer`
behind an explicit ``begin() → stage → commit() / rollback()`` transaction
lifecycle with pluggable maintenance policies (immediate, deferred,
enforcing). Commits are measured with scoped I/O attribution and journaled
as inverse deltas, so any policy can roll a transaction back atomically —
the shell, CLI, assertion system, deferred maintainer, and workload
runners all route their writes through here.
"""

from repro.engine.engine import (
    Engine,
    EngineError,
    EngineTransaction,
    TransactionResult,
)
from repro.engine.policy import (
    DeferredPolicy,
    EnforcingPolicy,
    ImmediatePolicy,
    MaintenancePolicy,
)
from repro.storage.undo import UndoLog

__all__ = [
    "DeferredPolicy",
    "Engine",
    "EngineError",
    "EngineTransaction",
    "EnforcingPolicy",
    "ImmediatePolicy",
    "MaintenancePolicy",
    "TransactionResult",
    "UndoLog",
]
