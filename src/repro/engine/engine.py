"""The transactional engine facade.

One lifecycle for every write path in the system::

    engine = Engine(maintainer)
    txn = engine.begin()
    txn.stage("Emp", Delta.modification([(old, new)]))
    result = txn.commit()          # or txn.rollback() to discard

``commit()`` hands the staged transaction to the engine's
:class:`~repro.engine.policy.MaintenancePolicy`, which decides *when and
how* views are maintained (immediately, per batch, or with atomic
rejection of assertion violations). Every commit is measured with a scoped
I/O counter (per-transaction attribution) and journaled in an
:class:`~repro.storage.undo.UndoLog` of inverse deltas, so any policy —
and any storage error — can roll the database and all materialized views
back to the exact pre-transaction state, uncharged.

:class:`EngineTransaction` is also a context manager: a clean ``with``
block commits, an exception discards the staged work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping

from repro.algebra.evaluate import evaluate
from repro.algebra.multiset import Multiset, Row
from repro.algebra.operators import RelExpr, Scan
from repro.ivm.delta import Delta
from repro.obs.metrics import MetricsRegistry, get_metrics
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer
from repro.storage.pager import IOStats
from repro.storage.undo import UndoLog
from repro.workload.transactions import Transaction

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.engine.policy import MaintenancePolicy
    from repro.ivm.maintainer import ViewMaintainer


class EngineError(Exception):
    """Raised for transaction-lifecycle misuse (stage after commit, …)."""


@dataclass
class TransactionResult:
    """Outcome of one committed transaction.

    ``deferred`` marks a commit that only queued the transaction (its
    maintenance I/O will be attributed to the flushing commit);
    ``view_deltas`` / ``io`` / violation maps are empty for those.
    """

    txn: Transaction
    committed: bool
    deferred: bool = False
    view_deltas: dict[int, Delta] = field(default_factory=dict)
    io: IOStats = field(default_factory=IOStats)
    new_violations: dict[str, Multiset] = field(default_factory=dict)
    cleared_violations: dict[str, Multiset] = field(default_factory=dict)
    #: group-commit batch this transaction rode in (None outside the
    #: server's GroupCommitter); a composed batch's maintenance I/O is
    #: attributed to the batch, so per-client results in a batch carry an
    #: empty ``io``.
    batch: int | None = None

    @property
    def ok(self) -> bool:
        """True when the transaction introduced no assertion violations."""
        return not self.new_violations


class EngineTransaction:
    """One open transaction: stage deltas, then commit or roll back."""

    def __init__(self, engine: "Engine", name: str) -> None:
        self._engine = engine
        self.name = name
        self.state = "active"  # 'active' | 'committed' | 'rolled back'
        self._staged: dict[str, list[Delta]] = {}

    # -- staging -----------------------------------------------------------------

    def _check_active(self) -> None:
        if self.state != "active":
            raise EngineError(f"transaction {self.name!r} is already {self.state}")

    def stage(self, relation: str, delta: Delta) -> "EngineTransaction":
        """Stage a delta against ``relation``; nothing is applied until
        commit. Staging validates that the relation exists."""
        self._check_active()
        self._engine.db.relation(relation)  # raises StorageError if unknown
        if not delta.is_empty:
            self._staged.setdefault(relation, []).append(delta)
        return self

    def insert(self, relation: str, rows: Iterable[Row]) -> "EngineTransaction":
        """Stage insertions."""
        return self.stage(relation, Delta.insertion(rows))

    def delete(self, relation: str, rows: Iterable[Row]) -> "EngineTransaction":
        """Stage deletions."""
        return self.stage(relation, Delta.deletion(rows))

    def modify(
        self, relation: str, pairs: Iterable[tuple[Row, Row]]
    ) -> "EngineTransaction":
        """Stage (old, new) modifications."""
        return self.stage(relation, Delta.modification(pairs))

    @property
    def is_empty(self) -> bool:
        return not self._staged

    def staged_transaction(self) -> Transaction:
        """The staged work as one composed :class:`Transaction` (sequential
        deltas per relation are net-composed, with delete+insert pairs on a
        candidate key re-paired into modifications)."""
        from repro.ivm.deferred import compose_deltas

        deltas: dict[str, Delta] = {}
        for relation, staged in self._staged.items():
            schema = self._engine.db.relation(relation).schema
            composed = compose_deltas(schema, staged)
            if not composed.is_empty:
                deltas[relation] = composed
        return Transaction(self.name, deltas)

    # -- lifecycle ---------------------------------------------------------------

    def commit(self) -> TransactionResult:
        """Hand the staged transaction to the engine's policy.

        On success the transaction is ``committed``. If the policy rejects
        it (e.g. :class:`EnforcingPolicy` on an assertion violation) the
        database is already rolled back when the exception propagates and
        the transaction is marked ``rolled back``.
        """
        self._check_active()
        txn = self.staged_transaction()
        try:
            result = self._engine.execute(txn)
        except Exception:
            self.state = "rolled back"
            raise
        self.state = "committed"
        return result

    def rollback(self) -> None:
        """Discard the staged deltas; the database was never touched."""
        self._check_active()
        self._staged.clear()
        self.state = "rolled back"

    def __enter__(self) -> "EngineTransaction":
        self._check_active()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.state != "active":
            return  # already committed / rolled back explicitly
        if exc_type is None:
            self.commit()
        else:
            self.rollback()

    def __repr__(self) -> str:
        return f"<EngineTransaction {self.name} [{self.state}]: {sorted(self._staged)}>"


class Engine:
    """The single write path: database + maintainer + maintenance policy.

    Wraps a materialized :class:`~repro.ivm.maintainer.ViewMaintainer` and
    routes every transaction through one policy-driven commit pipeline;
    ``assertion_roots`` (assertion name → DAG root group) lets results
    carry per-assertion violation reports, and is what
    :class:`~repro.engine.policy.EnforcingPolicy` enforces against.
    """

    def __init__(
        self,
        maintainer: "ViewMaintainer",
        policy: "MaintenancePolicy | None" = None,
        assertion_roots: Mapping[str, int] | None = None,
        tracer: "Tracer | NullTracer | None" = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        from repro.engine.policy import ImmediatePolicy

        self.maintainer = maintainer
        self.db = maintainer.db
        self.assertion_roots = dict(assertion_roots or {})
        self.policy = policy if policy is not None else ImmediatePolicy()
        self.metrics = metrics if metrics is not None else get_metrics()
        self.tracer: "Tracer | NullTracer" = NULL_TRACER
        self.set_tracer(tracer)
        self._txn_seq = 0
        self._active_txn: EngineTransaction | None = None
        self.policy.bind(self)

    def set_tracer(self, tracer: "Tracer | NullTracer | None") -> None:
        """Attach (or detach, with ``None``) a tracer; it is bound to this
        engine's I/O counter so span I/O ties out to commit attribution."""
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.tracer.bind(self.db.counter)

    # -- lifecycle ---------------------------------------------------------------

    def begin(self, name: str | None = None) -> EngineTransaction:
        """Open a transaction (usable as a context manager).

        One at a time: beginning a second transaction while the previous
        one is still ``active`` raises :class:`EngineError` — two open
        transactions on one engine would interleave their journal entries
        in the :class:`~repro.storage.undo.UndoLog`, which is exactly the
        corruption a second concurrent client used to be able to trigger.
        Concurrent clients go through the server's single-writer commit
        queue instead (``repro.server``).
        """
        active = self._active_txn
        if active is not None and active.state == "active":
            raise EngineError(
                f"transaction {active.name!r} is still active; commit or "
                "roll it back before begin() — two open transactions would "
                "interleave their undo journals"
            )
        self._txn_seq += 1
        txn = EngineTransaction(self, name or f"__txn_{self._txn_seq}")
        self._active_txn = txn
        return txn

    def execute(self, txn: Transaction) -> TransactionResult:
        """Commit a ready-made :class:`Transaction` through the policy.

        Serialized on the database's write latch: the single-writer server
        thread and any single-session caller mutate storage one commit at
        a time (the latch is reentrant, so a deferred flush nested inside
        a commit still works)."""
        if not any(not d.is_empty for d in txn.deltas.values()):
            return TransactionResult(txn=txn, committed=True)
        with self.db.latch:
            try:
                result = self.policy.commit(self, txn)
            except Exception as exc:
                self.metrics.counter("engine.rollbacks").inc()
                from repro.constraints.assertions import AssertionViolation

                if isinstance(exc, AssertionViolation):
                    self.metrics.counter("engine.rejected").inc()
                raise
        self._observe(result)
        return result

    def flush(self) -> TransactionResult | None:
        """Flush policy-deferred work (no-op for immediate policies)."""
        with self.db.latch:
            try:
                result = self.policy.flush(self)
            except Exception as exc:
                self.metrics.counter("engine.rollbacks").inc()
                from repro.constraints.assertions import AssertionViolation

                if isinstance(exc, AssertionViolation):
                    self.metrics.counter("engine.rejected").inc()
                raise
        if result is not None:
            self._observe(result)
        return result

    # -- epochs (snapshot reads) ---------------------------------------------------

    @property
    def epoch(self) -> int:
        """The database's commit epoch (advances once per applied commit)."""
        return self.db.epoch_log.epoch

    def pin_epoch(self) -> int:
        """Pin the current epoch for snapshot reads (see :meth:`select`).

        While any pin is outstanding, each commit's inverse deltas are
        retained in the database's :class:`~repro.storage.undo.EpochLog`;
        always pair with :meth:`unpin_epoch` so the history can be freed.
        """
        return self.db.epoch_log.pin()

    def unpin_epoch(self, epoch: int) -> None:
        """Release an epoch pin taken with :meth:`pin_epoch`."""
        self.db.epoch_log.unpin(epoch)

    def note_commit(self, undo: UndoLog) -> None:
        """Policy hook: one commit reached its success point. Advances the
        shared epoch and retains the commit's inverse deltas while any
        reader holds an epoch pin."""
        self.db.epoch_log.note_commit(undo)

    def _observe(self, result: TransactionResult) -> None:
        """Fold one policy result into the metrics registry (no page I/O)."""
        m = self.metrics
        if result.deferred:
            m.counter("engine.deferrals").inc()
            return
        m.counter("engine.commits").inc()
        m.observe_io(result.io)
        m.histogram("engine.commit_io").observe(result.io.total)
        if result.new_violations:
            m.counter("engine.violations").inc(
                sum(rows.total() for rows in result.new_violations.values())
            )
        if result.cleared_violations:
            m.counter("engine.violations_cleared").inc(
                sum(rows.total() for rows in result.cleared_violations.values())
            )
        # Refresh the compiled-plan cache's cumulative hit rate (gauges:
        # last value wins, so folding it per commit is idempotent).
        from repro.algebra.compile import plan_cache

        pc = plan_cache()
        if pc.hits or pc.misses:
            m.observe_cache("plan", pc.hits, pc.misses)
        # Commit-scoped fetch/scan cache and the ad-hoc plan cache
        # (cumulative per maintainer; gauges, so idempotent per commit).
        cc = getattr(self.maintainer, "commit_cache_stats", None)
        if cc is not None and (cc.hits or cc.misses):
            m.observe_cache("commit", cc.hits, cc.misses)
            m.gauge("cache.commit.io_saved").set(cc.io_saved)
        apc = getattr(self.maintainer, "plan_cache", None)
        if apc is not None and (apc.stats.hits or apc.stats.misses):
            m.observe_cache("adhoc_plan", apc.stats.hits, apc.stats.misses)
        # Durable shadow storage: actual page/WAL traffic, reported apart
        # from the paper's simulated page-I/O accounting (gauges over the
        # store's cumulative PagerStats, so folding per commit is
        # idempotent).
        durable = self.db.durable
        if durable is not None:
            ds = durable.stats
            if ds.pool_hits or ds.pool_misses:
                m.observe_cache("buffer_pool", ds.pool_hits, ds.pool_misses)
            m.gauge("durable.pool_hit_rate").set(ds.hit_rate)
            for key, value in ds.snapshot().items():
                if key in ("pool_hits", "pool_misses"):
                    continue
                m.gauge(f"durable.{key}").set(value)
        # Sharded storage: shard count and track-routing counters are kept
        # by the maintainer; surface the layout here so a report shows it
        # even for streams whose tracks all broadcast.
        shards = getattr(self.db, "shards", 0)
        if shards:
            m.gauge("shard.count").set(shards)

    @property
    def pending(self) -> int:
        """Transactions the policy has accepted but not yet applied."""
        return self.policy.pending

    # -- reads -------------------------------------------------------------------

    def select(
        self, expr: RelExpr, epoch: int | None = None
    ) -> tuple[Multiset, IOStats]:
        """Evaluate a query, charged as scans of the base relations it
        reads (hash joins and aggregation are memory-resident, as in the
        maintainer's scan accounting). Returns (rows, this query's I/O).

        Charged per *leaf occurrence*, not per distinct relation: a
        self-join (Emp ⋈ Emp) reads the relation once per operand under
        the Section 3.6 model, exactly as the analytic ``scan_cost``
        prices each scan node.

        ``epoch`` (from :meth:`pin_epoch`) selects the snapshot-read path:
        the query sees the database exactly as of that epoch, regardless
        of commits applied since. The reader copies the scanned relations
        under the storage latch (a brief copy, not held for evaluation),
        replays the epoch log's inverse deltas newest-first down to the
        pinned epoch with the I/O counter suspended — undoing to a
        snapshot is bookkeeping, exactly like rollback — and evaluates
        against the reconstructed contents. Scans are charged at the
        *snapshot's* row counts, to a private counter: a snapshot reader
        never touches the shared ledger, so it cannot race the writer."""
        if epoch is not None:
            return self._select_at(expr, epoch)
        counter = self.db.counter
        with self.tracer.span("select", expr=type(expr).__name__):
            with self.db.latch:
                with counter.scoped() as scope:
                    for node in expr.walk():
                        if isinstance(node, Scan):
                            counter.charge_tuple_read(
                                self.db.relation(node.name).row_count
                            )
                    with counter.suspended():
                        result = evaluate(expr, self.db)
        self.metrics.counter("engine.selects").inc()
        self.metrics.observe_io(scope.stats)
        return result, scope.stats

    def _select_at(self, expr: RelExpr, epoch: int) -> tuple[Multiset, IOStats]:
        """Snapshot read: reconstruct the scanned relations as of ``epoch``
        from the live contents plus the epoch log's inverse deltas."""
        from repro.storage.pager import IOCounter

        names = {node.name for node in expr.walk() if isinstance(node, Scan)}
        with self.tracer.span("select", expr=type(expr).__name__, epoch=epoch):
            with self.db.latch:
                snapshot = {
                    name: self.db.relation(name).contents().copy()
                    for name in names
                }
                replay = self.db.epoch_log.inverses_since(epoch)
            counter = IOCounter()  # private: never races the shared ledger
            with counter.suspended():
                # Newest commit first, inverses within a commit newest
                # first — the same order UndoLog.rollback applies them.
                for _, entries in reversed(replay):
                    for rel_name, inverse in reversed(entries):
                        contents = snapshot.get(rel_name)
                        if contents is not None:
                            _apply_inverse(contents, inverse)
            with counter.scoped() as scope:
                for node in expr.walk():
                    if isinstance(node, Scan):
                        counter.charge_tuple_read(snapshot[node.name].total())
                with counter.suspended():
                    result = evaluate(expr, snapshot)
        self.metrics.counter("engine.selects").inc()
        self.metrics.counter("engine.snapshot_selects").inc()
        return result, scope.stats

    def io_snapshot(self) -> IOStats:
        """Cumulative I/O of the underlying database counter."""
        return self.db.counter.snapshot()

    # -- policy plumbing ---------------------------------------------------------

    def apply_with_undo(self, txn: Transaction, undo: UndoLog) -> dict[int, Delta]:
        """Apply through the maintainer, journaling inverse deltas.

        Declared transaction types use their optimizer-chosen track;
        anything else goes through the ad-hoc path (track chosen on the
        fly from the concrete deltas). The engine's tracer is threaded
        per-call (engines built by :class:`AssertionSystem` share one
        maintainer, so the tracer cannot live on the maintainer itself).
        """
        if txn.type_name in self.maintainer.txn_types:
            return self.maintainer.apply(txn, undo=undo, tracer=self.tracer)
        return self.maintainer.apply_adhoc(
            txn, name=txn.type_name, undo=undo, tracer=self.tracer
        )

    def violations(
        self, view_deltas: Mapping[int, Delta]
    ) -> tuple[dict[str, Multiset], dict[str, Multiset]]:
        """Split assertion-root deltas into (entered, cleared) violations."""
        new: dict[str, Multiset] = {}
        cleared: dict[str, Multiset] = {}
        memo = self.maintainer.memo
        for name, root in self.assertion_roots.items():
            delta = view_deltas.get(memo.find(root))
            if delta is None or delta.is_empty:
                continue
            entered = delta.all_inserted()
            left = delta.all_deleted()
            if entered:
                new[name] = entered
            if left:
                cleared[name] = left
        return new, cleared

    def __repr__(self) -> str:
        return (
            f"<Engine policy={type(self.policy).__name__} "
            f"views={len(self.maintainer.marking)} pending={self.pending}>"
        )


def _apply_inverse(contents: Multiset, inverse: Delta) -> None:
    """Apply one journaled inverse delta onto a bare multiset copy —
    the snapshot-read analogue of ``StoredRelation.apply_delta``, minus
    indexes, constraints, and I/O charging."""
    contents.update(inverse.inserts, 1)
    contents.update(inverse.deletes, -1)
    for old, new in inverse.modifies:
        contents.add(old, -1)
        contents.add(new, 1)
