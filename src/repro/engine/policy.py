"""Pluggable maintenance policies: *when and how* a commit maintains views.

Every policy sees the same commit pipeline (scoped I/O attribution + an
:class:`~repro.storage.undo.UndoLog` of inverse deltas); they differ in
what happens around it:

* :class:`ImmediatePolicy` — the paper's per-transaction maintenance:
  apply base deltas, propagate to every materialized view, commit.
* :class:`DeferredPolicy` — queue commits and refresh views once per
  batch (composed deltas collapse repeated work); flush on demand or
  automatically every ``batch_size`` commits.
* :class:`EnforcingPolicy` — assertion checking with teeth: a transaction
  that introduces violations is rolled back **atomically** (base
  relations and all views restored bit-identically, rollback uncharged)
  and :class:`~repro.constraints.assertions.AssertionViolation` is raised
  over the clean pre-transaction state.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.engine.engine import EngineError, TransactionResult
from repro.storage.undo import UndoLog
from repro.workload.transactions import Transaction

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.engine.engine import Engine
    from repro.ivm.deferred import DeferredMaintainer


def _rollback(engine: "Engine", undo: UndoLog, reason: str) -> None:
    """Shared failure path: undo everything (journaling rollback progress
    into the WAL when durable) and discard the durable transaction."""
    durable = engine.db.durable
    with engine.tracer.span("rollback", reason=reason):
        undo.rollback(journal=durable.journal_undo if durable is not None else None)
    if durable is not None:
        durable.abort()


def _commit_through_maintainer(
    engine: "Engine", txn: Transaction, policy_label: str = "immediate"
) -> TransactionResult:
    """The shared commit pipeline: scoped I/O, undo journal, violation
    report. *Everything* between begin and the result — the maintainer
    apply, the assertion check, and the durable WAL/page commit — sits
    inside one rollback guard: an exception from any of them rolls back
    the applied base/view deltas before propagating, so even failed
    commits leave a consistent state. (Guarding only the apply would let
    a raising assertion check strand the applied deltas with the undo log
    dropped.) The durable commit only ever raises *before* its WAL
    barrier — deltas are size-validated pre-log, and a post-barrier page
    failure is absorbed by the store, which rolls forward from the log —
    so this rollback never contradicts a durable commit record.

    The "txn" span wraps exactly the scoped region plus the assertion
    check, so its measured I/O equals the commit's ``TransactionResult.io``
    — the tie-out the observability layer promises. The durable commit is
    outside the scoped region and never charges the I/O counter: actual
    page traffic is accounted separately in ``PagerStats``."""
    tracer = engine.tracer
    undo = UndoLog()
    durable = engine.db.durable
    with tracer.span("txn", txn=txn.type_name, policy=policy_label) as span:
        if durable is not None:
            durable.begin(txn.type_name)
        try:
            with engine.db.counter.scoped() as scope:
                view_deltas = engine.apply_with_undo(txn, undo)
                with tracer.span(
                    "assertion_check", assertions=len(engine.assertion_roots)
                ):
                    new, cleared = engine.violations(view_deltas)
            if durable is not None:
                durable.commit(tracer=tracer)
        except Exception:
            _rollback(engine, undo, reason="commit-error")
            raise
        # Past the point of no return: advance the snapshot epoch (and
        # retain the undo journal's inverses for any pinned readers)
        # before the journal is discarded.
        engine.note_commit(undo)
        span.annotate(outcome="committed")
    return TransactionResult(
        txn=txn,
        committed=True,
        view_deltas=view_deltas,
        io=scope.stats,
        new_violations=new,
        cleared_violations=cleared,
    )


class MaintenancePolicy:
    """Strategy interface for :class:`~repro.engine.engine.Engine` commits."""

    def bind(self, engine: "Engine") -> None:
        """Called once when attached to an engine (build per-engine state)."""

    def commit(self, engine: "Engine", txn: Transaction) -> TransactionResult:
        """Commit one transaction; must either apply-and-report or raise
        with the database rolled back to the pre-transaction state."""
        raise NotImplementedError

    def flush(self, engine: "Engine") -> TransactionResult | None:
        """Apply any deferred work; immediate policies have none."""
        return None

    @property
    def pending(self) -> int:
        """Commits accepted but not yet applied to the database."""
        return 0


class ImmediatePolicy(MaintenancePolicy):
    """Maintain every materialized view within the committing transaction
    (the paper's setting)."""

    def commit(self, engine: "Engine", txn: Transaction) -> TransactionResult:
        """Apply base deltas and propagate to all views, atomically."""
        return _commit_through_maintainer(engine, txn)


class EnforcingPolicy(MaintenancePolicy):
    """Immediate maintenance that *rejects* violating transactions.

    Requires the engine to know its ``assertion_roots``. On violation, the
    undo log restores base relations and every materialized view exactly
    (uncharged), then :class:`AssertionViolation` is raised — the paper's
    §6 integrity checking upgraded from "report" to "enforce".
    """

    def bind(self, engine: "Engine") -> None:
        """Validate that the engine can attribute violations."""
        if not engine.assertion_roots:
            raise EngineError(
                "EnforcingPolicy needs an Engine with assertion_roots"
            )

    def commit(self, engine: "Engine", txn: Transaction) -> TransactionResult:
        """Apply, check assertion roots, and roll back atomically on entry
        of any violation."""
        from repro.constraints.assertions import AssertionViolation

        tracer = engine.tracer
        undo = UndoLog()
        durable = engine.db.durable
        with tracer.span("txn", txn=txn.type_name, policy="enforce") as span:
            if durable is not None:
                durable.begin(txn.type_name)
            try:
                with engine.db.counter.scoped() as scope:
                    view_deltas = engine.apply_with_undo(txn, undo)
                    with tracer.span(
                        "assertion_check", assertions=len(engine.assertion_roots)
                    ):
                        new, cleared = engine.violations(view_deltas)
                if new:
                    # The attempted maintenance work stays charged
                    # (scope.stats already measured it); the rollback
                    # itself is uncharged.
                    _rollback(engine, undo, reason="assertion-violation")
                    name = min(new)
                    span.annotate(outcome="rejected", violation=name)
                    raise AssertionViolation(name, new[name])
                if durable is not None:
                    durable.commit(tracer=tracer)
            except AssertionViolation:
                raise  # already rolled back above
            except Exception:
                # The assertion check (and the durable commit) must be
                # covered too: a raising check would otherwise strand the
                # applied deltas with the undo log dropped.
                _rollback(engine, undo, reason="commit-error")
                raise
            engine.note_commit(undo)
            span.annotate(outcome="committed")
        return TransactionResult(
            txn=txn,
            committed=True,
            view_deltas=view_deltas,
            io=scope.stats,
            new_violations={},
            cleared_violations=cleared,
        )


class DeferredPolicy(MaintenancePolicy):
    """Queue commits; refresh all views once per batch.

    Wraps a :class:`~repro.ivm.deferred.DeferredMaintainer` for the
    composition machinery. ``commit`` returns a ``deferred`` result (the
    database is untouched until flush); when ``batch_size`` is set, the
    commit that fills the batch flushes it and returns the batch's
    *applied* result instead.
    """

    def __init__(
        self,
        batch_size: int | None = None,
        deferred: "DeferredMaintainer | None" = None,
    ) -> None:
        if batch_size is not None and batch_size < 1:
            raise EngineError("batch_size must be positive")
        self.batch_size = batch_size
        self._deferred = deferred

    def bind(self, engine: "Engine") -> None:
        """Build the composition queue over the engine's maintainer."""
        if self._deferred is None:
            from repro.ivm.deferred import DeferredMaintainer

            self._deferred = DeferredMaintainer(engine.maintainer)

    def commit(self, engine: "Engine", txn: Transaction) -> TransactionResult:
        """Enqueue; flush (and return the applied batch result) when the
        batch is full."""
        assert self._deferred is not None, "policy used before bind()"
        with engine.tracer.span("defer", txn=txn.type_name):
            self._deferred.enqueue(txn)
        if self.batch_size is not None and self._deferred.pending >= self.batch_size:
            flushed = self.flush(engine)
            if flushed is not None:
                return flushed
        return TransactionResult(txn=txn, committed=True, deferred=True)

    def flush(self, engine: "Engine") -> TransactionResult | None:
        """Compose the queue into one transaction and commit it now.

        ``compose()`` drains the queue before the commit runs, so a commit
        that raises must hand the batch back (the commit already rolled
        the database back) — otherwise a storage error mid-flush silently
        loses every queued transaction. After the error propagates,
        ``pending`` still counts the batch and a retry can succeed."""
        assert self._deferred is not None, "policy used before bind()"
        combined = self._deferred.compose()
        if combined is None:
            return None
        try:
            return _commit_through_maintainer(
                engine, combined, policy_label="deferred-flush"
            )
        except Exception:
            self._deferred.requeue(combined)
            raise

    @property
    def pending(self) -> int:
        return self._deferred.pending if self._deferred is not None else 0
