"""An interactive SQL shell over a maintained database.

``python -m repro shell`` loads the paper's corporate database, installs
the DeptConstraint assertion with its optimizer-chosen auxiliary views, and
accepts:

* ``SELECT …`` — evaluated against the base relations (bag semantics);
* ``INSERT / UPDATE / DELETE …`` — turned into deltas and propagated
  incrementally to every materialized view, reporting the page I/Os spent
  and any assertion violations the statement introduces or clears;
* meta commands: ``\\views`` (materialized views and their contents
  summary), ``\\plan`` (the maintenance plan), ``\\io`` (cumulative I/O),
  ``\\check`` (current violations), ``\\explain`` (the update track with
  estimated costs), ``\\profile`` (run a DML statement under EXPLAIN
  ANALYZE), ``\\metrics`` (engine metrics), ``\\help``, ``\\quit``.

:class:`ShellSession` is importable and scriptable — the REPL is a thin
loop over ``execute``. All reads and writes route through the
transactional :class:`~repro.engine.engine.Engine`, so every statement's
page I/O is attributed to it (``io_cost`` on the result).

Error surface: an :class:`AssertionViolation` from an enforcing session is
reported as a rejection (the transaction was rolled back), expected
engine/SQL errors render as ``error:``, and anything else renders as
``internal error:`` — set ``REPRO_SHELL_DEBUG=1`` to re-raise those with
a full traceback instead.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.constraints.assertions import AssertionSystem, AssertionViolation
from repro.engine.engine import EngineError
from repro.ivm.maintainer import MaintenanceError
from repro.storage.relation import StorageError
from repro.sql import ast
from repro.sql.dml import dml_to_delta, is_dml
from repro.sql.lexer import SQLSyntaxError
from repro.sql.parser import parse
from repro.sql.translate import SQLTranslationError, _translate_select
from repro.storage.database import Database
from repro.workload.paperdb import (
    DEPT_SCHEMA,
    EMP_SCHEMA,
    generate_corporate_db,
)
from repro.workload.transactions import Transaction, paper_transactions

DEPT_CONSTRAINT = """
CREATE ASSERTION DeptConstraint CHECK (NOT EXISTS (
    SELECT Dept.DName FROM Emp, Dept
    WHERE Dept.DName = Emp.DName
    GROUPBY Dept.DName, Budget
    HAVING SUM(Salary) > Budget))
"""

HELP = """\
SELECT ... FROM ...            query the base relations
INSERT INTO t VALUES (...)     apply DML; views maintained incrementally
UPDATE t SET c = expr WHERE …
DELETE FROM t WHERE …
\\views    materialized views        \\plan    maintenance plan
\\io       cumulative page I/O       \\check   current assertion violations
\\explain [txn]   update track with estimated I/O costs
\\profile <DML>   execute a statement under EXPLAIN ANALYZE
\\checkpoint      snapshot durable pages now (durable sessions only)
\\metrics  engine metrics            \\help    this text
\\quit     exit"""


@dataclass
class ShellResult:
    """Outcome of one statement."""

    kind: str  # 'rows' | 'dml' | 'meta' | 'error'
    text: str
    rows: list[tuple] = field(default_factory=list)
    io_cost: int = 0


class ShellSession:
    """The scriptable engine behind ``python -m repro shell``."""

    def __init__(
        self,
        n_depts: int = 50,
        emps_per_dept: int = 10,
        seed: int = 0,
        enforce: bool = False,
        durable_path: str | None = None,
    ) -> None:
        self.db = Database(durable_path=durable_path)
        if "Emp" not in self.db:
            # Fresh database (or a non-durable session): seed the paper's
            # corporate data. A recovered durable session keeps its
            # relations — the WAL replay is authoritative, not the seed.
            data = generate_corporate_db(
                n_depts, emps_per_dept, seed=seed, budget_range=(800, 1200)
            )
            self.db.create_relation(
                "Dept", DEPT_SCHEMA, data["Dept"], indexes=[["DName"]]
            )
            self.db.create_relation(
                "Emp", EMP_SCHEMA, data["Emp"], indexes=[["DName"]]
            )
        self.system = AssertionSystem(
            self.db, [DEPT_CONSTRAINT], paper_transactions(), enforce=enforce
        )
        # All reads and writes go through the transactional engine: DML
        # commits are measured with scoped I/O and violation reports come
        # from the TransactionResult, not from reaching into the DAG.
        self.engine = self.system.engine
        self._schemas = {"Dept": DEPT_SCHEMA, "Emp": EMP_SCHEMA}

    # -- statement execution -----------------------------------------------------

    def execute(self, text: str) -> ShellResult:
        text = text.strip()
        if not text:
            return ShellResult("meta", "")
        if text.startswith("\\"):
            return self._meta(text)
        try:
            statement = parse(text)
        except SQLSyntaxError as exc:
            return ShellResult("error", f"syntax error: {exc}")
        try:
            if is_dml(statement):
                return self._run_dml(statement)
            if isinstance(statement, ast.SelectStmt):
                return self._run_select(statement)
        except AssertionViolation as exc:
            # Not an error: the enforcing engine rolled the statement back.
            return ShellResult("error", f"rejected: {exc} (transaction rolled back)")
        except (SQLTranslationError, EngineError, MaintenanceError, StorageError) as exc:
            return ShellResult("error", f"error: {exc}")
        except Exception as exc:
            if os.environ.get("REPRO_SHELL_DEBUG"):
                raise
            return ShellResult(
                "error",
                f"internal error: {exc!r} (set REPRO_SHELL_DEBUG=1 to re-raise)",
            )
        return ShellResult(
            "error", "only SELECT and DML statements are supported here"
        )

    def _run_select(self, statement: ast.SelectStmt) -> ShellResult:
        expr = _translate_select(statement, self._schemas, ())
        result, io = self.engine.select(expr)
        rows = sorted(result.expand())
        header = ", ".join(expr.schema.names)
        lines = [header] + [", ".join(str(v) for v in row) for row in rows[:20]]
        if len(rows) > 20:
            lines.append(f"... ({len(rows)} rows total)")
        lines.append(f"({io.total} page I/Os)")
        return ShellResult("rows", "\n".join(lines), rows=rows, io_cost=io.total)

    def _run_dml(self, statement) -> ShellResult:
        relation, delta = dml_to_delta(statement, self.db)
        if delta.is_empty:
            return ShellResult("dml", "no rows affected")
        txn = Transaction("__shell", {relation: delta})
        result = self.engine.execute(txn)
        cost = result.io.total
        pieces = [
            f"{delta.inserts.total()} inserted, {delta.deletes.total()} deleted, "
            f"{len(delta.modifies)} modified in {relation}; "
            f"{cost} page I/Os of view maintenance"
        ]
        for name, entered in result.new_violations.items():
            pieces.append(f"VIOLATION {name}: {sorted(entered.rows())}")
        for name, cleared in result.cleared_violations.items():
            pieces.append(f"cleared {name}: {sorted(cleared.rows())}")
        return ShellResult("dml", "\n".join(pieces), io_cost=cost)

    # -- meta commands --------------------------------------------------------------

    def _meta(self, command: str) -> ShellResult:
        name = command.split()[0]
        if name in ("\\q", "\\quit", "\\exit"):
            return ShellResult("meta", "bye", rows=[("quit",)])
        if name == "\\help":
            return ShellResult("meta", HELP)
        if name == "\\views":
            lines = []
            maintainer = self.system.maintainer
            for gid in sorted(maintainer.marking):
                group = maintainer.memo.group(gid)
                if group.is_leaf:
                    continue
                contents = maintainer.view_contents(gid)
                lines.append(
                    f"N{gid} {group.schema}: {contents.total()} rows"
                )
            return ShellResult("meta", "\n".join(lines))
        if name == "\\plan":
            from repro.core.report import render_report

            return ShellResult(
                "meta",
                render_report(
                    self.system.dag,
                    self.system.plan,
                    self.system.txns,
                    self.system.cost_model,
                    self.system.estimator,
                ),
            )
        if name == "\\io":
            return ShellResult("meta", str(self.engine.io_snapshot()))
        if name == "\\checkpoint":
            durable = self.db.durable
            if durable is None:
                return ShellResult(
                    "error",
                    "not a durable session (start with REPRO_DURABLE=<dir> "
                    "or Database(durable_path=...))",
                )
            pages = durable.checkpoint(tracer=self.engine.tracer)
            return ShellResult(
                "meta",
                f"checkpoint gen {durable.generation}: {pages} pages written; "
                f"{durable.stats.describe()}",
            )
        if name == "\\explain":
            return self._meta_explain(command)
        if name == "\\profile":
            return self._meta_profile(command)
        if name == "\\metrics":
            lines = self.engine.metrics.render()
            return ShellResult("meta", "\n".join(lines) if lines else "(no metrics yet)")
        if name == "\\check":
            lines = []
            for assertion in self.system.assertions:
                rows = self.system.current_violations(assertion)
                status = "satisfied" if not rows else f"VIOLATED by {sorted(rows.rows())}"
                lines.append(f"{assertion}: {status}")
            return ShellResult("meta", "\n".join(lines))
        return ShellResult("error", f"unknown command {name!r} (try \\help)")

    def _meta_explain(self, command: str) -> ShellResult:
        from repro.obs.explain import explain

        parts = command.split(maxsplit=1)
        maintainer = self.system.maintainer
        if len(parts) < 2:
            declared = ", ".join(sorted(maintainer.txn_types))
            return ShellResult(
                "error", f"usage: \\explain <txn>  (declared types: {declared})"
            )
        try:
            return ShellResult("meta", explain(maintainer, parts[1].strip()))
        except KeyError as exc:
            return ShellResult("error", f"error: {exc.args[0]}")

    def _meta_profile(self, command: str) -> ShellResult:
        """``\\profile <DML>`` — commit the statement under EXPLAIN ANALYZE.

        Meta dispatch bypasses ``execute``'s try/except, so this carries its
        own error surface (same tiers, same REPRO_SHELL_DEBUG escape hatch).
        """
        from repro.obs.explain import explain_analyze

        parts = command.split(maxsplit=1)
        if len(parts) < 2:
            return ShellResult("error", "usage: \\profile <INSERT|UPDATE|DELETE ...>")
        try:
            statement = parse(parts[1].strip())
        except SQLSyntaxError as exc:
            return ShellResult("error", f"syntax error: {exc}")
        if not is_dml(statement):
            return ShellResult("error", "\\profile takes a DML statement")
        try:
            relation, delta = dml_to_delta(statement, self.db)
            if delta.is_empty:
                return ShellResult("dml", "no rows affected")
            txn = Transaction("__shell", {relation: delta})
            text, result = explain_analyze(self.engine, txn)
        except AssertionViolation as exc:
            return ShellResult("error", f"rejected: {exc} (transaction rolled back)")
        except (SQLTranslationError, EngineError, MaintenanceError, StorageError) as exc:
            return ShellResult("error", f"error: {exc}")
        except Exception as exc:
            if os.environ.get("REPRO_SHELL_DEBUG"):
                raise
            return ShellResult(
                "error",
                f"internal error: {exc!r} (set REPRO_SHELL_DEBUG=1 to re-raise)",
            )
        return ShellResult("dml", text, io_cost=result.io.total)


def run_repl(durable_path: str | None = None) -> int:  # pragma: no cover - interactive loop
    session = ShellSession(durable_path=durable_path)
    print("repro shell — the paper's corporate database with DeptConstraint installed")
    if session.db.durable is not None:
        state = "recovered" if session.db.recovered else "fresh"
        print(f"durable session at {session.db.durable.path} ({state})")
    print("type \\help for commands")
    while True:
        try:
            line = input("sql> ")
        except (EOFError, KeyboardInterrupt):
            print()
            return 0
        result = session.execute(line)
        if result.text:
            print(result.text)
        if result.kind == "meta" and result.rows == [("quit",)]:
            return 0
