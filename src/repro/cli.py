"""Command-line interface: ``python -m repro``.

Subcommands:

* ``demo`` — the paper's running example end to end (optimize + execute);
* ``advise`` — read view/assertion DDL and a workload description, print a
  materialization advisor report;
* ``run`` — generate a paper-workload transaction stream and commit it
  through the transactional engine under a chosen maintenance policy
  (``immediate``, ``deferred``, or ``enforce``), reporting throughput,
  page I/O, and assertion outcomes;
* ``shell`` — interactive SQL shell over a maintained database.

The ``advise`` workload file is a small text format, one directive per
line::

    table Emp rows=10000 distinct=EName:10000,DName:1000,Salary:40 key=EName
    table Dept rows=1000 distinct=DName:1000,MName:1000,Budget:200 key=DName
    txn >Emp weight=1 modify=Emp:1:Salary
    txn Load weight=2 insert=Orders:10 delete=Orders:5

Types are declared in the DDL file via the schemas block (see
examples/advisor_input/ for a complete input pair).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.algebra.schema import Schema
from repro.algebra.types import DataType
from repro.core.heuristics import greedy_view_set
from repro.core.optimizer import optimal_view_set
from repro.core.report import render_report
from repro.cost.estimates import DagEstimator
from repro.cost.model import CostConfig
from repro.cost.page_io import PageIOCostModel
from repro.dag.builder import build_dag
from repro.sql.translate import translate_sql
from repro.storage.statistics import Catalog, TableStats
from repro.workload.transactions import TransactionType, UpdateSpec

_TYPES = {
    "int": DataType.INT,
    "float": DataType.FLOAT,
    "string": DataType.STRING,
    "bool": DataType.BOOL,
}

#: Maintenance policies ``run`` accepts, in help order.
POLICIES = ("immediate", "deferred", "enforce")


class WorkloadParseError(Exception):
    """Raised for malformed workload description files."""


def parse_workload(text: str) -> tuple[dict[str, Schema], Catalog, list[TransactionType]]:
    """Parse the table/txn directive format documented in the module
    docstring. Column types default to ``string`` for key-looking names and
    ``int`` otherwise unless annotated ``name:type:distinct``."""
    schemas: dict[str, Schema] = {}
    catalog = Catalog()
    txns: list[TransactionType] = []
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        kind = parts[0]
        if kind == "table":
            name = parts[1]
            options = dict(p.split("=", 1) for p in parts[2:])
            rows = float(options.get("rows", "1000"))
            distinct: dict[str, float] = {}
            columns = []
            for spec in options.get("columns", options.get("distinct", "")).split(","):
                if not spec:
                    continue
                fields = spec.split(":")
                col = fields[0]
                dtype = _TYPES.get(fields[1], None) if len(fields) >= 3 else None
                count = float(fields[-1])
                if dtype is None:
                    dtype = DataType.STRING if count == rows else DataType.INT
                columns.append((col, dtype))
                distinct[col] = count
            if not columns:
                raise WorkloadParseError(f"table {name!r} declares no columns")
            keys = []
            if "key" in options:
                keys = [options["key"].split(",")]
            schemas[name] = Schema.of(*columns, keys=keys)
            catalog.set(name, TableStats(rows, distinct))
        elif kind == "txn":
            name = parts[1]
            options = [p for p in parts[2:]]
            weight = 1.0
            updates: dict[str, UpdateSpec] = {}
            for option in options:
                key, value = option.split("=", 1)
                if key == "weight":
                    weight = float(value)
                    continue
                fields = value.split(":")
                rel = fields[0]
                count = float(fields[1]) if len(fields) > 1 else 1.0
                current = updates.get(rel, UpdateSpec())
                if key == "modify":
                    cols = frozenset(fields[2].split(",")) if len(fields) > 2 else frozenset()
                    if not cols:
                        raise WorkloadParseError(
                            f"txn {name!r}: modify needs columns (rel:count:cols)"
                        )
                    updates[rel] = UpdateSpec(
                        current.inserts, current.deletes, count, cols
                    )
                elif key == "insert":
                    updates[rel] = UpdateSpec(
                        count, current.deletes, current.modifies,
                        current.modified_columns,
                    )
                elif key == "delete":
                    updates[rel] = UpdateSpec(
                        current.inserts, count, current.modifies,
                        current.modified_columns,
                    )
                else:
                    raise WorkloadParseError(f"unknown txn option {key!r}")
            txns.append(TransactionType(name, updates, weight))
        else:
            raise WorkloadParseError(f"unknown directive {kind!r}")
    if not schemas:
        raise WorkloadParseError("no tables declared")
    if not txns:
        raise WorkloadParseError("no transaction types declared")
    return schemas, catalog, txns


def advise(
    ddl: str,
    workload: str,
    exhaustive: bool = True,
    charge_root: bool = False,
    save_path: str | None = None,
) -> str:
    """Run the advisor on DDL + workload text; returns the report.

    ``save_path`` persists the chosen plan as JSON (reload it with
    :func:`repro.core.serialize.load_plan` against a rebuilt DAG)."""
    schemas, catalog, txns = parse_workload(workload)
    view = translate_sql(ddl, schemas)
    dag = build_dag(view.expr)
    estimator = DagEstimator(dag.memo, catalog)
    cost_model = PageIOCostModel(
        dag.memo,
        estimator,
        CostConfig(charge_root_update=charge_root, root_group=dag.root),
    )
    if exhaustive:
        result = optimal_view_set(dag, txns, cost_model, estimator)
    else:
        result = greedy_view_set(dag, txns, cost_model, estimator)
    if save_path is not None:
        from repro.core.serialize import save_plan

        save_plan(dag, result, save_path)
    header = f"View {view.name!r}" + (" (assertion)" if view.is_assertion else "")
    return header + "\n" + render_report(dag, result, txns, cost_model, estimator)


def run_stream(
    policy: str = "immediate",
    n_txns: int = 100,
    batch_size: int = 10,
    n_depts: int = 50,
    emps_per_dept: int = 10,
    seed: int = 0,
    trace_path: str | None = None,
    durable_path: str | None = None,
    shards: int | None = None,
    parallel: bool = False,
    clients: int = 0,
    max_batch: int = 32,
) -> str:
    """Commit a random paper-workload stream through the engine.

    Loads the corporate database with the DeptConstraint assertion, builds
    an :class:`~repro.engine.engine.Engine` with the requested maintenance
    policy, drives ``n_txns`` random >Emp / >Dept modifications through
    :func:`~repro.workload.runner.run_transactions`, and returns the
    report text.

    ``trace_path`` attaches a :class:`~repro.obs.trace.Tracer` for the run
    and writes the span tree as JSON to that path. The report text is
    byte-identical with and without tracing (CI asserts this) — tracing
    observes the commits, it never changes them.

    ``durable_path`` routes every commit through the WAL-protected page
    store at that directory (``run --durable DIR``). The stream report is
    unchanged — the paper's simulated accounting is durable-neutral — and
    a trailing ``durable:`` line reports the actual pager traffic.

    ``shards`` (``run --shards N`` / ``REPRO_SHARDS``) stores Emp, Dept
    and every materialized view hash-partitioned on DName — the workload's
    join and grouping key, so co-partitioned tracks stay shard-local — and
    ``parallel`` (``run --parallel`` / ``REPRO_SHARD_PARALLEL``) runs
    co-partitioned prefixes in a worker pool. Either way the report's
    results and page-I/O accounting are bit-identical to an unsharded run.
    Combining ``parallel`` with ``durable_path`` warns: durable journaling
    is fork-unsafe, so the maintainer quietly falls back to sequential
    shard execution (a ``parallel: suppressed (durable)`` report line
    says so out loud).

    ``clients`` ≥ 2 splits the stream across that many concurrent client
    threads over a shared group committer
    (:func:`~repro.workload.runner.run_concurrent_transactions`): each
    client updates its own slice of the departments, batches of up to
    ``max_batch`` riders are composed and maintained once per batch, and
    the report counts the drained batches.
    """
    import random
    import warnings

    from repro.constraints.assertions import AssertionSystem
    from repro.engine import DeferredPolicy, Engine
    from repro.shell import DEPT_CONSTRAINT
    from repro.storage.database import Database
    from repro.workload.generators import random_modify
    from repro.workload.paperdb import (
        DEPT_SCHEMA,
        EMP_SCHEMA,
        generate_corporate_db,
    )
    from repro.workload.runner import run_transactions
    from repro.workload.transactions import paper_transactions

    if policy not in POLICIES:
        raise ValueError(
            f"unknown maintenance policy {policy!r}; expected one of {POLICIES}"
        )
    if parallel and durable_path is not None:
        # The maintainer forks shard workers, and durable journaling is
        # fork-unsafe (two processes appending one WAL), so PR 8 made it
        # silently fall back to sequential execution. Say so.
        warnings.warn(
            "--parallel is suppressed when --durable is set: durable "
            "journaling is fork-unsafe, so shard maintenance runs "
            "sequentially",
            RuntimeWarning,
            stacklevel=2,
        )
    db = Database(
        durable_path=durable_path,
        shards=shards,
        partition_keys={"Emp": ("DName",), "Dept": ("DName",)},
    )
    if "Emp" not in db:
        # A recovered durable directory keeps its relations; otherwise
        # seed the corporate database as usual.
        data = generate_corporate_db(
            n_depts, emps_per_dept, seed=seed, budget_range=(800, 1200)
        )
        db.create_relation("Dept", DEPT_SCHEMA, data["Dept"], indexes=[["DName"]])
        db.create_relation("Emp", EMP_SCHEMA, data["Emp"], indexes=[["DName"]])
    system = AssertionSystem(
        db,
        [DEPT_CONSTRAINT],
        paper_transactions(),
        enforce=(policy == "enforce"),
        parallel_shards=parallel or None,
    )
    if policy == "deferred":
        engine = Engine(
            system.maintainer,
            policy=DeferredPolicy(batch_size=batch_size),
            assertion_roots=system.roots,
        )
    else:
        engine = system.engine
    rng = random.Random(seed)
    column = {"Emp": "Salary", "Dept": "Budget"}

    def stream():
        # Deferred commits are invisible until flush, so the generator
        # tracks the logical (queued-inclusive) rows itself; under the
        # immediate/enforcing policies the database is always current
        # (rejected transactions are rolled back), so it reads live state.
        if policy == "deferred":
            from repro.ivm.delta import Delta
            from repro.workload.transactions import Transaction

            logical = {
                rel: sorted(db.relation(rel).contents().rows())
                for rel in column
            }
            for _ in range(n_txns):
                rel = "Emp" if rng.random() < 0.5 else "Dept"
                rows = logical[rel]
                i = rng.randrange(len(rows))
                old = rows[i]
                idx = db.relation(rel).schema.index_of(column[rel])
                change = rng.randint(-10, 10) or 1
                new = old[:idx] + (old[idx] + change,) + old[idx + 1 :]
                rows[i] = new
                yield Transaction(
                    f">{rel}", {rel: Delta.modification([(old, new)])}
                )
        else:
            for _ in range(n_txns):
                rel = "Emp" if rng.random() < 0.5 else "Dept"
                yield random_modify(db, f">{rel}", rel, column[rel], rng)

    tracer = None
    if trace_path is not None:
        from repro.obs.trace import Tracer

        tracer = Tracer()
        engine.set_tracer(tracer)
    if clients >= 2:
        from repro.workload.runner import run_concurrent_transactions

        streams = _client_streams(db, n_txns, clients, seed, column)
        report, _ = run_concurrent_transactions(
            engine, streams, max_batch=max_batch
        )
    else:
        report = run_transactions(engine, stream())
    if tracer is not None:
        import json

        from repro.obs.trace import trace_to_json

        with open(trace_path, "w") as f:
            json.dump(trace_to_json(tracer), f, indent=2)
            f.write("\n")
    lines = [
        f"policy={policy} n_txns={n_txns} seed={seed}",
        str(report),
    ]
    for name, count in sorted(report.new_violations.items()):
        lines.append(f"  {name}: {count} violating rows entered")
    for name, count in sorted(report.cleared_violations.items()):
        lines.append(f"  {name}: {count} violating rows cleared")
    if clients >= 2:
        lines.insert(
            1,
            f"clients: {clients} (max_batch {max_batch}, "
            f"{report.batches} batches)",
        )
    if db.shards:
        mode = "parallel" if system.maintainer.parallel_shards else "sequential"
        lines.append(f"shards: {db.shards} ({mode})")
    if parallel and db.durable is not None:
        lines.append("parallel: suppressed (durable)")
    if db.durable is not None:
        lines.append(f"durable: {db.durable.stats.describe()}")
        db.close()
    return "\n".join(lines)


def _client_streams(db, n_txns: int, clients: int, seed: int, column: dict):
    """Pre-built per-client transaction lists over disjoint department
    slices (client ``i`` owns departments ``i mod clients``), so
    concurrent clients never touch the same rows and every group-commit
    interleaving composes to the same net state. Rows are tracked
    logically per client — commits may still be riding the queue when the
    next transaction is generated, so live contents can't be read."""
    import random

    from repro.ivm.delta import Delta
    from repro.workload.transactions import Transaction

    dept_rows = sorted(db.relation("Dept").contents().rows())
    emp_rows = sorted(db.relation("Emp").contents().rows())
    emp_dname = db.relation("Emp").schema.index_of("DName")
    streams = []
    for i in range(clients):
        my_depts = [d for j, d in enumerate(dept_rows) if j % clients == i]
        names = {d[0] for d in my_depts}
        logical = {
            "Dept": my_depts,
            "Emp": [e for e in emp_rows if e[emp_dname] in names],
        }
        count = n_txns // clients + (1 if i < n_txns % clients else 0)
        rng = random.Random(seed * 7919 + i)
        txns = []
        for _ in range(count):
            rel = "Emp" if rng.random() < 0.5 else "Dept"
            rows = logical[rel]
            if not rows:
                rel = "Dept" if rel == "Emp" else "Emp"
                rows = logical[rel]
            k = rng.randrange(len(rows))
            old = rows[k]
            idx = db.relation(rel).schema.index_of(column[rel])
            change = rng.randint(-10, 10) or 1
            new = old[:idx] + (old[idx] + change,) + old[idx + 1 :]
            rows[k] = new
            txns.append(Transaction(f">{rel}", {rel: Delta.modification([(old, new)])}))
        streams.append(txns)
    return streams


def _cmd_run(args: argparse.Namespace) -> int:
    print(
        run_stream(
            policy=args.policy,
            n_txns=args.n_txns,
            batch_size=args.batch_size,
            seed=args.seed,
            trace_path=args.trace,
            durable_path=args.durable,
            shards=args.shards,
            parallel=args.parallel,
            clients=args.clients,
            max_batch=args.max_batch,
        )
    )
    if args.trace:
        print(f"trace written to {args.trace}", file=sys.stderr)
    return 0


def _cmd_demo(_args: argparse.Namespace) -> int:
    from repro.workload.paperdb import DEPT_SCHEMA, EMP_SCHEMA
    from repro.workload.transactions import paper_transactions

    ddl = """
    CREATE VIEW ProblemDept (DName) AS
    SELECT Dept.DName FROM Emp, Dept
    WHERE Dept.DName = Emp.DName
    GROUPBY Dept.DName, Budget
    HAVING SUM(Salary) > Budget
    """
    view = translate_sql(ddl, {"Dept": DEPT_SCHEMA, "Emp": EMP_SCHEMA})
    dag = build_dag(view.expr)
    estimator = DagEstimator(dag.memo, Catalog.paper_catalog())
    cost_model = PageIOCostModel(
        dag.memo, estimator, CostConfig(root_group=dag.root)
    )
    txns = paper_transactions()
    result = optimal_view_set(dag, txns, cost_model, estimator)
    print(render_report(dag, result, txns, cost_model, estimator))
    return 0


def _cmd_advise(args: argparse.Namespace) -> int:
    with open(args.view) as f:
        ddl = f.read()
    with open(args.workload) as f:
        workload = f.read()
    try:
        print(
            advise(
                ddl,
                workload,
                exhaustive=not args.greedy,
                charge_root=args.charge_root,
                save_path=args.save,
            )
        )
    except WorkloadParseError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def _cmd_shell(args: argparse.Namespace) -> int:  # pragma: no cover - interactive
    from repro.shell import run_repl

    return run_repl(durable_path=args.durable)


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.server.server import run_server

    return run_server(
        host=args.host,
        port=args.port,
        policy=args.policy,
        batch_size=args.batch_size,
        durable_path=args.durable,
        wal_sync=args.wal_sync,
        max_batch=args.max_batch,
        seed=args.seed,
    )


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Materialized-view maintenance advisor (SIGMOD 1996 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    demo = sub.add_parser("demo", help="run the paper's running example")
    demo.set_defaults(func=_cmd_demo)
    adv = sub.add_parser("advise", help="advise on a view + workload")
    adv.add_argument("view", help="file with one CREATE VIEW / CREATE ASSERTION")
    adv.add_argument("workload", help="workload description file")
    adv.add_argument("--greedy", action="store_true", help="greedy search")
    adv.add_argument(
        "--charge-root", action="store_true",
        help="include the top-level view's own update cost",
    )
    adv.add_argument(
        "--save", metavar="PLAN.json", default=None,
        help="persist the chosen plan as JSON for later reuse",
    )
    adv.set_defaults(func=_cmd_advise)
    run = sub.add_parser(
        "run", help="commit a random paper workload through the engine"
    )
    run.add_argument(
        "--policy", choices=list(POLICIES),
        default="immediate", help="maintenance policy for the engine",
    )
    run.add_argument("--n-txns", type=int, default=100, help="stream length")
    run.add_argument(
        "--batch-size", type=int, default=10,
        help="flush threshold for --policy deferred",
    )
    run.add_argument("--seed", type=int, default=0, help="workload RNG seed")
    run.add_argument(
        "--trace", metavar="OUT.json", default=None,
        help="record a span trace of the run and write it as JSON",
    )
    run.add_argument(
        "--durable", metavar="DIR", default=None,
        help="WAL-protected page storage at DIR (recovers a previous run)",
    )
    run.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="hash-partition storage across N shards (default: REPRO_SHARDS)",
    )
    run.add_argument(
        "--parallel", action="store_true",
        help="run co-partitioned track prefixes in a shard worker pool",
    )
    run.add_argument(
        "--clients", type=int, default=0, metavar="N",
        help="drive the stream from N concurrent clients over a group committer",
    )
    run.add_argument(
        "--max-batch", type=int, default=32,
        help="group-commit batch cap for --clients",
    )
    run.set_defaults(func=_cmd_run)
    shell = sub.add_parser(
        "shell", help="interactive SQL shell over a maintained database"
    )
    shell.add_argument(
        "--durable", metavar="DIR", default=None,
        help="durable session: WAL-protected pages at DIR, \\checkpoint enabled",
    )
    shell.set_defaults(func=_cmd_shell)
    serve = sub.add_parser(
        "serve", help="socket server: many clients, one group-committed engine"
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=4957,
        help="TCP port (0 binds an ephemeral port, printed on startup)",
    )
    serve.add_argument(
        "--policy", choices=list(POLICIES), default="immediate",
        help="maintenance policy for the shared engine",
    )
    serve.add_argument(
        "--batch-size", type=int, default=None,
        help="flush threshold for --policy deferred",
    )
    serve.add_argument(
        "--durable", metavar="DIR", default=None,
        help="WAL-protected page storage at DIR (one fsync per group batch)",
    )
    serve.add_argument(
        "--wal-sync", choices=("normal", "full"), default=None,
        help="WAL sync mode for --durable",
    )
    serve.add_argument(
        "--max-batch", type=int, default=32, help="group-commit batch cap"
    )
    serve.add_argument("--seed", type=int, default=0, help="corporate data seed")
    serve.set_defaults(func=_cmd_serve)
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
