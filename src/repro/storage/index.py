"""Hash indexes over stored relations.

An index maps a key (values of the indexed columns) to the multiset of rows
with that key. Following the paper's model, a probe costs one index-page
I/O; maintenance touches one index page per distinct key, with a write only
when the entry set for that key actually changes.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.algebra.multiset import Multiset, Row
from repro.algebra.schema import Schema
from repro.storage.pager import IOCounter


class HashIndex:
    """A hash index on a fixed tuple of columns."""

    def __init__(self, schema: Schema, columns: tuple[str, ...], counter: IOCounter) -> None:
        self.columns = tuple(schema.resolve(c) for c in columns)
        self._positions = tuple(schema.index_of(c) for c in self.columns)
        self._buckets: dict[tuple[Any, ...], Multiset] = {}
        self._counter = counter

    def key_of(self, row: Row) -> tuple[Any, ...]:
        return tuple(row[i] for i in self._positions)

    # -- probes -------------------------------------------------------------------

    def probe(self, key: tuple[Any, ...]) -> Multiset:
        """Look up a key: one index-page read, one tuple read per match."""
        self._counter.charge_index_read()
        bucket = self._buckets.get(key)
        if bucket is None:
            return Multiset()
        self._counter.charge_tuple_read(bucket.total())
        return bucket.copy()

    def probe_free(self, key: tuple[Any, ...]) -> Multiset:
        """Look up a key without charging I/O (used internally by storage
        when tuples are already being paid for at the relation level)."""
        bucket = self._buckets.get(key)
        return bucket.copy() if bucket is not None else Multiset()

    # -- maintenance ----------------------------------------------------------------

    def add(self, row: Row, count: int = 1) -> None:
        key = self.key_of(row)
        bucket = self._buckets.setdefault(key, Multiset())
        bucket.add(row, count)
        if not bucket:
            del self._buckets[key]

    def apply(self, delta: Multiset) -> tuple[int, int]:
        """Apply a signed delta; returns (index pages read, pages written).

        One page is read per distinct key touched, and written when the
        key's entries changed — which they always do for a nonzero delta, so
        writes equal the distinct-key count; the caller decides whether to
        charge them (a modification that leaves the indexed key unchanged
        does not need an index write in the paper's accounting, because the
        tuple's bucket membership is unchanged).
        """
        keys = {self.key_of(row) for row, _ in delta.items()}
        for row, count in delta.items():
            self.add(row, count)
        return len(keys), len(keys)

    def keys_touched(self, rows: Iterable[Row]) -> int:
        return len({self.key_of(r) for r in rows})

    def distinct_keys(self) -> int:
        return len(self._buckets)

    def rebuild(self, data: Multiset) -> None:
        self._buckets.clear()
        for row, count in data.items():
            self.add(row, count)
