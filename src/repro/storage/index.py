"""Hash indexes over stored relations.

An index maps a key (values of the indexed columns) to the multiset of rows
with that key. Following the paper's model, a probe costs one index-page
I/O; maintenance touches one index page per distinct key, with a write only
when the entry set for that key actually changes.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.algebra.compile import tuple_getter
from repro.algebra.multiset import Multiset, Row
from repro.algebra.schema import Schema
from repro.storage.pager import IOCounter


class HashIndex:
    """A hash index on a fixed tuple of columns."""

    def __init__(self, schema: Schema, columns: tuple[str, ...], counter: IOCounter) -> None:
        self.columns = tuple(schema.resolve(c) for c in columns)
        self._positions = tuple(schema.index_of(c) for c in self.columns)
        self._buckets: dict[tuple[Any, ...], Multiset] = {}
        # Per-bucket tuple totals, so a probe can charge its matches without
        # re-summing the bucket's counts.
        self._totals: dict[tuple[Any, ...], int] = {}
        self._counter = counter
        # key_of sits on every index-maintenance path; bind it to a compiled
        # positional getter instead of a per-call generator expression.
        self.key_of: Callable[[Row], tuple[Any, ...]] = tuple_getter(self._positions)

    # -- probes -------------------------------------------------------------------

    def probe(self, key: tuple[Any, ...]) -> Multiset:
        """Look up a key: one index-page read, one tuple read per match."""
        self._counter.charge_index_read()
        bucket = self._buckets.get(key)
        if bucket is None:
            return Multiset()
        self._counter.charge_tuple_read(self._totals[key])
        return bucket.copy()

    def probe_many(self, keys: Iterable[tuple[Any, ...]]) -> Multiset:
        """Look up a batch of keys, accumulating matches into one multiset.

        Charges exactly what the equivalent :meth:`probe` loop would — one
        index-page read per key, one tuple read per match — but skips the
        per-key bucket copy and per-key result merge.
        """
        out = Multiset()
        counts = out._counts
        buckets = self._buckets
        totals = self._totals
        n_keys = 0
        matches = 0
        if isinstance(keys, (set, frozenset, dict)):
            # Distinct keys have disjoint buckets, so each bucket's counts
            # can be merged with a C-level dict update instead of row-wise.
            n_keys = len(keys)
            for key in keys:
                bucket = buckets.get(key)
                if bucket is None:
                    continue
                matches += totals[key]
                counts.update(bucket._counts)
        else:
            for key in keys:
                n_keys += 1
                bucket = buckets.get(key)
                if bucket is None:
                    continue
                matches += totals[key]
                for row, count in bucket.items():
                    counts[row] = counts.get(row, 0) + count
        self._counter.charge_index_read(n_keys)
        self._counter.charge_tuple_read(matches)
        return out

    def probe_buckets(self, keys: Iterable[tuple[Any, ...]]) -> dict[tuple[Any, ...], Multiset]:
        """Bucket-grained batched lookup: same charges as :meth:`probe_many`
        (one index-page read per key, one tuple read per match), but returns
        the matching ``{key: bucket}`` mapping instead of flattening it, so a
        probe-side join can consume the index's own hash layout without
        rebuilding it. The buckets are **borrowed, read-only** views — they
        must be consumed before any maintenance touches this index, and
        never mutated.
        """
        out: dict[tuple[Any, ...], Multiset] = {}
        buckets = self._buckets
        totals = self._totals
        n_keys = 0
        matches = 0
        for key in keys:
            n_keys += 1
            bucket = buckets.get(key)
            if bucket is None:
                continue
            matches += totals[key]
            out[key] = bucket
        self._counter.charge_index_read(n_keys)
        self._counter.charge_tuple_read(matches)
        return out

    def probe_free(self, key: tuple[Any, ...]) -> Multiset:
        """Look up a key without charging I/O (used internally by storage
        when tuples are already being paid for at the relation level)."""
        bucket = self._buckets.get(key)
        return bucket.copy() if bucket is not None else Multiset()

    # -- maintenance ----------------------------------------------------------------

    def add(self, row: Row, count: int = 1) -> None:
        if count == 0:
            return
        key = self.key_of(row)
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = self._buckets[key] = Multiset()
            self._totals[key] = 0
        counts = bucket._counts
        new = counts.get(row, 0) + count
        if new == 0:
            del counts[row]
            if not counts:
                del self._buckets[key]
                del self._totals[key]
                return
        else:
            counts[row] = new
        self._totals[key] += count

    def apply(self, delta: Multiset) -> tuple[int, int]:
        """Apply a signed delta; returns (index pages read, pages written).

        One page is read per distinct key touched, and written when the
        key's entries changed — which they always do for a nonzero delta, so
        writes equal the distinct-key count; the caller decides whether to
        charge them (a modification that leaves the indexed key unchanged
        does not need an index write in the paper's accounting, because the
        tuple's bucket membership is unchanged).
        """
        keys = {self.key_of(row) for row, _ in delta.items()}
        for row, count in delta.items():
            self.add(row, count)
        return len(keys), len(keys)

    def keys_touched(self, rows: Iterable[Row]) -> int:
        return len({self.key_of(r) for r in rows})

    def distinct_keys(self) -> int:
        return len(self._buckets)

    def rebuild(self, data: Multiset) -> None:
        self._buckets.clear()
        self._totals.clear()
        for row, count in data.items():
            self.add(row, count)
