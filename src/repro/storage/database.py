"""The database: a catalog of stored relations sharing one I/O counter."""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Iterable, Iterator, Mapping, Sequence

from repro.algebra.multiset import Multiset, Row
from repro.algebra.schema import Schema
from repro.ivm.delta import Delta
from repro.storage.pager import IOCounter
from repro.storage.partition import HashPartitioner, env_shards
from repro.storage.relation import StorageError, StoredRelation
from repro.storage.sharded import ShardedRelation

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.storage.durable import DurableStore


class Database:
    """A named collection of :class:`StoredRelation` with shared accounting.

    Implements the evaluator's ``RelationSource`` protocol *uncharged*
    (``multiset``): full re-evaluation is the correctness oracle, not a
    priced operation. Charged access goes through the relations' ``scan`` /
    ``lookup`` methods.

    Durability is opt-in: ``durable_path`` (or the ``REPRO_DURABLE``
    environment variable) attaches a :class:`~repro.storage.durable.
    DurableStore` that shadows every committed change onto WAL-protected
    pages. The in-memory relations stay authoritative — and the paper's
    :class:`IOCounter` accounting is untouched by the shadow — so a
    non-durable database behaves bit-identically with the switch off. If
    the directory holds a previous incarnation, its state is recovered
    here (WAL replay) and the relations are rebuilt before any caller
    sees the database.
    """

    def __init__(
        self,
        durable_path: str | None = None,
        pool_size: int | None = None,
        checkpoint_every: int | None = None,
        wal_sync: str | None = None,
        shards: int | None = None,
        partition_keys: Mapping[str, Sequence[str]] | None = None,
    ) -> None:
        self.counter = IOCounter()
        self._relations: dict[str, StoredRelation] = {}
        # Multi-session coordination: engines serialize storage mutation
        # (and snapshot copies) on this reentrant latch, and the epoch log
        # retains committed inverse deltas while readers hold epoch pins
        # (see storage/undo.py EpochLog). Both are free for the classic
        # single-session path: an uncontended RLock and an empty log.
        self.latch = threading.RLock()
        from repro.storage.undo import EpochLog

        self.epoch_log = EpochLog()
        # Sharded storage mode (see storage/partition.py and docs/
        # architecture.md): 0 = classic unsharded relations; >= 1 = every
        # relation created here is a ShardedRelation, hash-partitioned on
        # ``partition_keys[name]`` when given, else its smallest candidate
        # key (else all columns). Sharding is behaviour-preserving by
        # construction — results, rejections, and IOCounter charges are
        # bit-identical to the unsharded database.
        self.shards = env_shards() if shards is None else max(0, int(shards))
        self._partition_keys = {
            name: tuple(cols) for name, cols in (partition_keys or {}).items()
        }
        self.durable: "DurableStore | None" = None
        if durable_path is None:
            from repro.storage.durable import env_durable_path

            durable_path = env_durable_path()
        if durable_path:
            from repro.storage.durable import DurableStore

            self.durable = DurableStore(
                durable_path,
                pool_size=pool_size,
                checkpoint_every=checkpoint_every,
                wal_sync=wal_sync,
            )
            self._restore(self.durable)

    def _restore(self, store: "DurableStore") -> None:
        """Rebuild in-memory relations from a recovered durable store.

        The journal hook is attached only *after* each relation's
        recovered contents are loaded — restoring must not re-journal
        what the WAL already holds."""
        for name, schema, indexes in store.relations():
            relation = self._make_relation(name, schema, None)
            relation.load_multiset(store.contents(name))
            for cols in indexes:
                relation.create_index(cols)
            relation._journal = store
            self._relations[name] = relation

    @property
    def recovered(self) -> bool:
        """True when this database was rebuilt from a durable directory."""
        return self.durable is not None and self.durable.recovered

    def _partition_columns(
        self, name: str, schema: Schema, partition_on: Sequence[str] | None
    ) -> tuple[str, ...]:
        """The partition-key columns for a new sharded relation: an
        explicit request wins, then the catalog-level ``partition_keys``
        map, then the smallest declared candidate key, then all columns."""
        if partition_on:
            return tuple(schema.resolve(c) for c in partition_on)
        declared = self._partition_keys.get(name)
        if declared:
            return tuple(schema.resolve(c) for c in declared)
        if schema.keys:
            key = min(schema.keys, key=lambda k: (len(k), sorted(k)))
            return tuple(sorted(key))
        return tuple(schema.names)

    def _make_relation(
        self, name: str, schema: Schema, partition_on: Sequence[str] | None
    ) -> StoredRelation:
        if not self.shards:
            return StoredRelation(name, schema, self.counter)
        columns = self._partition_columns(name, schema, partition_on)
        partitioner = HashPartitioner(columns, self.shards)
        return ShardedRelation(name, schema, self.counter, partitioner=partitioner)

    def create_relation(
        self,
        name: str,
        schema: Schema,
        rows: Iterable[Row] = (),
        indexes: Iterable[Iterable[str]] = (),
        partition_on: Sequence[str] | None = None,
    ) -> StoredRelation:
        if name in self._relations:
            raise StorageError(f"relation {name!r} already exists")
        relation = self._make_relation(name, schema, partition_on)
        # Build (and validate) entirely in memory first: nothing reaches
        # the WAL until the rows and indexes are known-good, so a failed
        # create cannot resurrect as a phantom empty relation on recovery.
        relation.load(rows)
        for cols in indexes:
            relation.create_index(cols)
        if self.durable is not None:
            initial = relation.contents()
            delta = Delta(inserts=initial)
            # Oversized rows must reject before even the DDL is journaled.
            self.durable.validate_delta(name, delta)
            self.durable.on_create(name, schema)
            for built in relation.indexes:
                self.durable.on_index(name, built)
            if initial:
                self.durable.on_delta(name, delta)
            relation._journal = self.durable
        self._relations[name] = relation
        return relation

    def drop_relation(self, name: str) -> None:
        if name not in self._relations:
            raise StorageError(f"relation {name!r} does not exist")
        del self._relations[name]
        if self.durable is not None:
            self.durable.on_drop(name)

    def relation(self, name: str) -> StoredRelation:
        try:
            return self._relations[name]
        except KeyError:
            raise StorageError(f"relation {name!r} does not exist") from None

    def checkpoint(self) -> int:
        """Snapshot durable pages now (no-op without a durable store);
        returns the number of pages written."""
        if self.durable is None:
            return 0
        return self.durable.checkpoint()

    def close(self) -> None:
        """Release durable file handles (no-op for in-memory databases)."""
        if self.durable is not None:
            self.durable.close()

    def __deepcopy__(self, memo: dict) -> "Database":
        """Deep-copy the catalog; coordination primitives (the latch and
        the epoch log, which hold OS locks) are created fresh — a copied
        database is a new single-session world, not a live participant in
        the original's commit ordering."""
        import copy as _copy

        from repro.storage.undo import EpochLog

        clone = self.__class__.__new__(self.__class__)
        memo[id(self)] = clone
        for key, value in self.__dict__.items():
            if key == "latch":
                clone.latch = threading.RLock()
            elif key == "epoch_log":
                clone.epoch_log = EpochLog()
            else:
                setattr(clone, key, _copy.deepcopy(value, memo))
        return clone

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[StoredRelation]:
        return iter(self._relations.values())

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._relations)

    # -- RelationSource protocol -----------------------------------------------------

    def multiset(self, name: str) -> Multiset:
        return self.relation(name).contents()
