"""The database: a catalog of stored relations sharing one I/O counter."""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.algebra.multiset import Multiset, Row
from repro.algebra.schema import Schema
from repro.storage.pager import IOCounter
from repro.storage.relation import StorageError, StoredRelation


class Database:
    """A named collection of :class:`StoredRelation` with shared accounting.

    Implements the evaluator's ``RelationSource`` protocol *uncharged*
    (``multiset``): full re-evaluation is the correctness oracle, not a
    priced operation. Charged access goes through the relations' ``scan`` /
    ``lookup`` methods.
    """

    def __init__(self) -> None:
        self.counter = IOCounter()
        self._relations: dict[str, StoredRelation] = {}

    def create_relation(
        self,
        name: str,
        schema: Schema,
        rows: Iterable[Row] = (),
        indexes: Iterable[Iterable[str]] = (),
    ) -> StoredRelation:
        if name in self._relations:
            raise StorageError(f"relation {name!r} already exists")
        relation = StoredRelation(name, schema, self.counter)
        relation.load(rows)
        for cols in indexes:
            relation.create_index(cols)
        self._relations[name] = relation
        return relation

    def drop_relation(self, name: str) -> None:
        if name not in self._relations:
            raise StorageError(f"relation {name!r} does not exist")
        del self._relations[name]

    def relation(self, name: str) -> StoredRelation:
        try:
            return self._relations[name]
        except KeyError:
            raise StorageError(f"relation {name!r} does not exist") from None

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[StoredRelation]:
        return iter(self._relations.values())

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._relations)

    # -- RelationSource protocol -----------------------------------------------------

    def multiset(self, name: str) -> Multiset:
        return self.relation(name).contents()
