"""Partitioners: deterministic row → shard assignment over key columns.

A :class:`Partitioner` maps a tuple of partition-column *values* to a shard
number. Two properties matter to the maintenance runtime:

* **Determinism across processes.** Shard assignment feeds parallel
  workers and must agree between runs and across ``multiprocessing``
  children, so hashing uses a CRC-based stable hash instead of Python's
  ``hash()`` (which is randomized per process by ``PYTHONHASHSEED``).
* **Value-based compatibility.** Delta propagation through a join never
  crosses shards exactly when both inputs send equal join-key values to
  the same shard — :meth:`Partitioner.compatible` is that check, and it
  deliberately ignores column *names* (``Emp.DName`` and ``Dept.DName``
  are distinct columns carrying the same values).

The sharded storage mode is opt-in: ``Database(shards=N)`` or the
``REPRO_SHARDS`` environment variable (0/unset = off); parallel shard
maintenance additionally needs ``parallel_shards=True`` on the maintainer
or ``REPRO_SHARD_PARALLEL=1``. See ``docs/architecture.md``
("Sharding & parallel maintenance").
"""

from __future__ import annotations

import os
import zlib
from bisect import bisect_right
from typing import Any, Sequence


def env_shards() -> int:
    """Process default shard count (``REPRO_SHARDS``; 0/unset = unsharded)."""
    value = os.environ.get("REPRO_SHARDS")
    if value is None:
        return 0
    value = value.strip()
    if not value:
        return 0
    try:
        return max(0, int(value))
    except ValueError:
        raise ValueError(
            f"REPRO_SHARDS must be an integer shard count, got {value!r}"
        ) from None


def env_shard_parallel() -> bool:
    """Process default for parallel shard tracks (``REPRO_SHARD_PARALLEL``)."""
    value = os.environ.get("REPRO_SHARD_PARALLEL")
    if value is None:
        return False
    return value.strip().lower() not in ("0", "false", "off", "no", "")


def stable_hash(values: tuple[Any, ...]) -> int:
    """A process-stable 32-bit hash of a value tuple.

    FNV-1a over the CRC32 of each value's ``repr`` — deterministic across
    processes and interpreter runs (unlike ``hash()``), cheap enough for
    per-row routing, and well-mixed for the small key domains the paper's
    workloads use.
    """
    h = 2166136261
    for value in values:
        h = ((h ^ zlib.crc32(repr(value).encode("utf-8"))) * 16777619) & 0xFFFFFFFF
    return h


class Partitioner:
    """Base: a deterministic map from partition-column values to a shard."""

    columns: tuple[str, ...]
    n_shards: int

    def shard_of(self, values: tuple[Any, ...]) -> int:
        """The shard owning ``values`` (ordered as :attr:`columns`)."""
        raise NotImplementedError

    def compatible(self, other: "Partitioner") -> bool:
        """Whether equal value tuples land on the same shard under both
        partitioners (column names deliberately ignored — co-partitioning
        is a property of the value → shard map)."""
        raise NotImplementedError

    def describe(self) -> str:
        return f"{type(self).__name__}({','.join(self.columns)} → {self.n_shards})"


class HashPartitioner(Partitioner):
    """Shard by stable hash of the partition-column values."""

    def __init__(self, columns: Sequence[str], n_shards: int) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if not columns:
            raise ValueError("HashPartitioner needs at least one column")
        self.columns = tuple(columns)
        self.n_shards = int(n_shards)

    def shard_of(self, values: tuple[Any, ...]) -> int:
        return stable_hash(values) % self.n_shards

    def compatible(self, other: Partitioner) -> bool:
        return (
            isinstance(other, HashPartitioner)
            and other.n_shards == self.n_shards
            and len(other.columns) == len(self.columns)
        )


class RangePartitioner(Partitioner):
    """Shard by sorted cut points over the (single-column) partition value.

    ``boundaries`` are the ascending upper-exclusive cut points: a value
    ``v`` lands in the first shard whose boundary exceeds it, i.e. shard
    ``bisect_right(boundaries, v)`` — ``len(boundaries) + 1`` shards total.
    """

    def __init__(self, columns: Sequence[str], boundaries: Sequence[Any]) -> None:
        if not columns:
            raise ValueError("RangePartitioner needs at least one column")
        if len(columns) != 1:
            raise ValueError("RangePartitioner supports exactly one column")
        self.columns = tuple(columns)
        self.boundaries = tuple(boundaries)
        if list(self.boundaries) != sorted(self.boundaries):
            raise ValueError("RangePartitioner boundaries must be ascending")
        self.n_shards = len(self.boundaries) + 1

    def shard_of(self, values: tuple[Any, ...]) -> int:
        return bisect_right(self.boundaries, values[0])

    def compatible(self, other: Partitioner) -> bool:
        return (
            isinstance(other, RangePartitioner)
            and other.boundaries == self.boundaries
        )
