"""Equi-depth histograms for selectivity estimation.

The paper's examples use uniform data, where the classic 1/3 range guess is
harmless; real columns are skewed. An equi-depth histogram (every bucket
holds the same number of values) gives the estimator calibrated
selectivities for range and equality predicates. Histograms are optional:
:class:`~repro.storage.statistics.TableStats` carries them when collected,
and the selectivity code falls back to the System-R constants otherwise.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class Histogram:
    """An equi-depth histogram over a numeric column.

    ``bounds`` has ``buckets + 1`` entries; bucket *i* covers
    ``[bounds[i], bounds[i+1])`` (the last bucket is closed on the right)
    and holds ``depth`` values. ``distinct`` is the column's overall
    distinct count, used for equality estimates.
    """

    bounds: tuple[float, ...]
    depth: float
    total: float
    distinct: float

    def __post_init__(self) -> None:
        if len(self.bounds) < 2:
            raise ValueError("histogram needs at least one bucket")
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError("histogram bounds must be non-decreasing")

    @property
    def buckets(self) -> int:
        return len(self.bounds) - 1

    @property
    def low(self) -> float:
        return self.bounds[0]

    @property
    def high(self) -> float:
        return self.bounds[-1]

    # -- construction ---------------------------------------------------------------

    @staticmethod
    def build(values: Sequence[float], buckets: int = 10) -> "Histogram":
        """Build an equi-depth histogram from concrete values."""
        if not values:
            raise ValueError("cannot build a histogram from no values")
        ordered = sorted(float(v) for v in values)
        n = len(ordered)
        buckets = max(1, min(buckets, n))
        bounds = [ordered[0]]
        for i in range(1, buckets):
            bounds.append(ordered[(i * n) // buckets])
        bounds.append(ordered[-1])
        return Histogram(
            bounds=tuple(bounds),
            depth=n / buckets,
            total=float(n),
            distinct=float(len(set(ordered))),
        )

    # -- estimation --------------------------------------------------------------------

    def _fraction_below(self, value: float) -> float:
        """Fraction of values strictly below ``value`` (linear interpolation
        within the bucket)."""
        if value <= self.low:
            return 0.0
        if value > self.high:
            return 1.0
        index = bisect.bisect_right(self.bounds, value) - 1
        index = min(index, self.buckets - 1)
        lo, hi = self.bounds[index], self.bounds[index + 1]
        within = 0.0 if hi == lo else (value - lo) / (hi - lo)
        return (index + within) / self.buckets

    def selectivity(self, op: str, value: float) -> float:
        """Estimated fraction of rows satisfying ``col <op> value``.

        Ranges use the continuous (interpolated) approximation: ``<`` and
        ``<=`` coincide, as do ``>`` and ``>=`` — the point mass at a single
        value is below the histogram's resolution. Equality assumes the
        uniform-distinct estimate inside the domain, zero outside.
        """
        if self.low == self.high:
            # Degenerate single-value domain: exact point mass.
            eq = 1.0 if value == self.low else 0.0
            below = 1.0 if value > self.low else 0.0
            at_or_below = 1.0 if value >= self.low else 0.0
        else:
            eq = (
                1.0 / max(self.distinct, 1.0)
                if self.low <= value <= self.high
                else 0.0
            )
            below = at_or_below = self._fraction_below(value)
        if op == "=":
            return eq
        if op == "!=":
            return 1.0 - eq
        # Domain boundaries are exact regardless of interpolation error.
        if op == "<":
            return 0.0 if value <= self.low else below
        if op == "<=":
            return 1.0 if value >= self.high else at_or_below
        if op == ">":
            return 0.0 if value >= self.high else max(0.0, 1.0 - at_or_below)
        if op == ">=":
            return 1.0 if value <= self.low else max(0.0, 1.0 - below)
        raise ValueError(f"unknown comparison operator {op!r}")

    def __str__(self) -> str:
        return (
            f"Histogram({self.buckets} buckets, [{self.low:g}, {self.high:g}], "
            f"{self.total:g} rows, {self.distinct:g} distinct)"
        )
