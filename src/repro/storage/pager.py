"""Pages: the paper's Section 3.6 storage cost model, plus a real pager.

Two layers live here, deliberately side by side:

* **Accounting** (:class:`IOCounter` / :class:`IOStats`) — the paper's
  *simulated* page I/O. Every stored relation and index charges this
  shared counter so a maintenance run can be measured end to end and
  compared with the analytic cost model in :mod:`repro.cost.page_io`.
  Assumptions copied from the paper: all indices are hash indices with no
  overflowed buckets; tuples are unclustered, so fetching a tuple costs one
  relation-page I/O; looking up a key costs one index-page I/O plus one page
  per tuple returned; updating a tuple costs one page read (old value) and
  one page write (new value); index pages are read (and written when the
  indexed key changes) once per distinct key touched.

* **Actual pages** (:class:`Page` / :class:`Pager` / :class:`BufferPool`)
  — fixed-size slotted pages over a single file, used by the opt-in
  durability layer (:mod:`repro.storage.durable`). These NEVER touch the
  :class:`IOCounter`: logical accounting stays bit-identical with
  durability on or off, and the pager's own traffic (reads, writes,
  buffer-pool hits/misses/evictions) is reported separately through
  :class:`PagerStats`.
"""

from __future__ import annotations

import json
import os
import struct
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator


@dataclass
class IOStats:
    """Immutable snapshot of I/O counts."""

    index_reads: int = 0
    index_writes: int = 0
    tuple_reads: int = 0
    tuple_writes: int = 0

    @property
    def total(self) -> int:
        return self.index_reads + self.index_writes + self.tuple_reads + self.tuple_writes

    def __sub__(self, other: "IOStats") -> "IOStats":
        return IOStats(
            self.index_reads - other.index_reads,
            self.index_writes - other.index_writes,
            self.tuple_reads - other.tuple_reads,
            self.tuple_writes - other.tuple_writes,
        )

    def __add__(self, other: "IOStats") -> "IOStats":
        return IOStats(
            self.index_reads + other.index_reads,
            self.index_writes + other.index_writes,
            self.tuple_reads + other.tuple_reads,
            self.tuple_writes + other.tuple_writes,
        )

    def __str__(self) -> str:
        return (
            f"{self.total} I/Os (idx r/w {self.index_reads}/{self.index_writes}, "
            f"tup r/w {self.tuple_reads}/{self.tuple_writes})"
        )


class IOCounter:
    """Mutable page-I/O counter charged by storage operations."""

    def __init__(self) -> None:
        self._index_reads = 0
        self._index_writes = 0
        self._tuple_reads = 0
        self._tuple_writes = 0
        self.enabled = True

    def charge_index_read(self, pages: int = 1) -> None:
        if self.enabled:
            self._index_reads += pages

    def charge_index_write(self, pages: int = 1) -> None:
        if self.enabled:
            self._index_writes += pages

    def charge_tuple_read(self, tuples: int = 1) -> None:
        if self.enabled:
            self._tuple_reads += tuples

    def charge_tuple_write(self, tuples: int = 1) -> None:
        if self.enabled:
            self._tuple_writes += tuples

    def snapshot(self) -> IOStats:
        return IOStats(
            self._index_reads, self._index_writes, self._tuple_reads, self._tuple_writes
        )

    def reset(self) -> None:
        self._index_reads = self._index_writes = 0
        self._tuple_reads = self._tuple_writes = 0

    @property
    def total(self) -> int:
        return self.snapshot().total

    class _Suspended:
        def __init__(self, counter: "IOCounter") -> None:
            self._counter = counter

        def __enter__(self) -> None:
            self._was_enabled = self._counter.enabled
            self._counter.enabled = False

        def __exit__(self, *exc) -> None:
            self._counter.enabled = self._was_enabled

    def suspended(self) -> "_Suspended":
        """Context manager that disables charging (setup / verification)."""
        return IOCounter._Suspended(self)

    class _Scoped:
        """Attributes the I/O charged inside a ``with`` block (see
        :meth:`IOCounter.scoped`). ``stats`` holds the block's
        :class:`IOStats` after exit; ``so_far`` reads it mid-block."""

        def __init__(self, counter: "IOCounter") -> None:
            self._counter = counter
            self._before = counter.snapshot()
            self.stats = IOStats()

        def __enter__(self) -> "IOCounter._Scoped":
            self._before = self._counter.snapshot()
            return self

        def __exit__(self, *exc) -> None:
            self.stats = self._counter.snapshot() - self._before

        @property
        def so_far(self) -> IOStats:
            """Charges accumulated since the block was entered."""
            return self._counter.snapshot() - self._before

    def scoped(self) -> "_Scoped":
        """Context manager that attributes charges to one scope.

        Charging stays enabled — the scope is pure measurement (built on
        :meth:`IOStats.__sub__`), so nesting and interleaving with
        :meth:`suspended` both do the obvious thing. Used for
        per-transaction I/O attribution in the engine layer.
        """
        return IOCounter._Scoped(self)


# ---------------------------------------------------------------------------
# Actual pages — the durability layer's storage primitives.
# ---------------------------------------------------------------------------

DEFAULT_PAGE_SIZE = 4096

_SLOT_DEAD = 0  # on-disk slot length marking a dead (reusable) slot


class PageError(Exception):
    """Raised for page-format violations (oversized record, bad page)."""


def pack_record(obj: Any) -> bytes:
    """Serialize one durable record (row-count pairs, WAL payloads).

    JSON keeps the format inspectable; tuples round-trip as lists and are
    re-tupled on decode. Values must be JSON scalars (int/float/str/bool/
    None) — everything the paper's workloads store.
    """
    return json.dumps(obj, separators=(",", ":"), ensure_ascii=False).encode("utf-8")


def unpack_record(data: bytes) -> Any:
    return _retuple(json.loads(data.decode("utf-8")))


def _retuple(value: Any) -> Any:
    """JSON decodes tuples as lists; rows are tuples — convert back."""
    if isinstance(value, list):
        return tuple(_retuple(v) for v in value)
    return value


class Page:
    """One fixed-size slotted page: a header plus length-prefixed slots.

    On disk: ``u16 slot_count`` then, per slot, ``u16 length`` (0 marks a
    dead slot) followed by the record bytes. Dead slots keep their 2-byte
    length word so slot ids referenced by the row directory stay stable;
    :meth:`add` reuses the first dead slot the record fits the page with.
    """

    __slots__ = ("page_size", "slots", "used")

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE) -> None:
        self.page_size = page_size
        self.slots: list[bytes | None] = []
        self.used = 2  # header

    def fits(self, record: bytes) -> bool:
        return self.used + 2 + len(record) <= self.page_size

    @property
    def free(self) -> int:
        return self.page_size - self.used

    def add(self, record: bytes) -> int:
        """Store a record, returning its slot id. Raises when full."""
        if not self.fits(record):
            raise PageError(
                f"record of {len(record)} bytes does not fit "
                f"({self.free} free of {self.page_size})"
            )
        for slot, existing in enumerate(self.slots):
            if existing is None:
                self.slots[slot] = record
                self.used += len(record)  # the 2-byte length word is already paid
                return slot
        self.slots.append(record)
        self.used += 2 + len(record)
        return len(self.slots) - 1

    def get(self, slot: int) -> bytes:
        record = self.slots[slot]
        if record is None:
            raise PageError(f"slot {slot} is dead")
        return record

    def mark_dead(self, slot: int) -> None:
        record = self.slots[slot]
        if record is None:
            raise PageError(f"slot {slot} is already dead")
        self.slots[slot] = None
        self.used -= len(record)

    def records(self) -> Iterator[tuple[int, bytes]]:
        for slot, record in enumerate(self.slots):
            if record is not None:
                yield slot, record

    def to_bytes(self) -> bytes:
        parts = [struct.pack("<H", len(self.slots))]
        for record in self.slots:
            if record is None:
                parts.append(struct.pack("<H", _SLOT_DEAD))
            else:
                parts.append(struct.pack("<H", len(record)))
                parts.append(record)
        data = b"".join(parts)
        if len(data) > self.page_size:  # pragma: no cover - guarded by fits()
            raise PageError(f"page overflow: {len(data)} > {self.page_size}")
        return data + b"\x00" * (self.page_size - len(data))

    @classmethod
    def from_bytes(cls, data: bytes, page_size: int = DEFAULT_PAGE_SIZE) -> "Page":
        if len(data) != page_size:
            raise PageError(f"expected {page_size} bytes, got {len(data)}")
        page = cls(page_size)
        (n_slots,) = struct.unpack_from("<H", data, 0)
        offset = 2
        for _ in range(n_slots):
            (length,) = struct.unpack_from("<H", data, offset)
            offset += 2
            if length == _SLOT_DEAD:
                page.slots.append(None)
            else:
                page.slots.append(data[offset : offset + length])
                offset += length
        # header + per-slot length word + live payload bytes
        page.used = 2 + 2 * len(page.slots) + sum(
            len(r) for r in page.slots if r is not None
        )
        return page

    def __repr__(self) -> str:
        live = sum(1 for r in self.slots if r is not None)
        return f"<Page {live}/{len(self.slots)} slots, {self.used}/{self.page_size}B>"


@dataclass
class PagerStats:
    """Actual storage traffic — entirely separate from :class:`IOStats`.

    ``page_reads`` / ``page_writes`` count real file-page transfers (cold
    buffer-pool misses, eviction spills, checkpoint writes); ``pool_hits``
    / ``pool_misses`` / ``evictions`` describe the buffer pool;
    ``wal_records`` / ``wal_bytes`` / ``fsyncs`` the log.
    """

    page_reads: int = 0
    page_writes: int = 0
    pool_hits: int = 0
    pool_misses: int = 0
    evictions: int = 0
    wal_records: int = 0
    wal_bytes: int = 0
    fsyncs: int = 0
    checkpoints: int = 0
    recovered_txns: int = 0

    @property
    def hit_rate(self) -> float:
        lookups = self.pool_hits + self.pool_misses
        return self.pool_hits / lookups if lookups else 0.0

    def snapshot(self) -> dict[str, int]:
        return {
            "page_reads": self.page_reads,
            "page_writes": self.page_writes,
            "pool_hits": self.pool_hits,
            "pool_misses": self.pool_misses,
            "evictions": self.evictions,
            "wal_records": self.wal_records,
            "wal_bytes": self.wal_bytes,
            "fsyncs": self.fsyncs,
            "checkpoints": self.checkpoints,
            "recovered_txns": self.recovered_txns,
        }

    def since(self, before: dict[str, int]) -> dict[str, int]:
        now = self.snapshot()
        return {k: now[k] - before.get(k, 0) for k in now}

    def describe(self) -> str:
        return (
            f"{self.pool_hits} hits / {self.pool_misses} misses "
            f"({self.hit_rate:.0%} hit rate), {self.evictions} evicted; "
            f"pages r/w {self.page_reads}/{self.page_writes}; "
            f"wal {self.wal_records} records / {self.wal_bytes} B / "
            f"{self.fsyncs} fsyncs"
        )


class Pager:
    """Fixed-size pages over a single file.

    Page indexes are positions in *this* file; the durability layer maps
    its stable logical page ids onto per-generation file indexes. Opening
    with ``create=True`` truncates.
    """

    def __init__(
        self,
        path: str,
        page_size: int = DEFAULT_PAGE_SIZE,
        create: bool = False,
        stats: PagerStats | None = None,
    ) -> None:
        self.path = path
        self.page_size = page_size
        self.stats = stats if stats is not None else PagerStats()
        mode = "w+b" if create or not os.path.exists(path) else "r+b"
        self._file = open(path, mode)
        self._file.seek(0, os.SEEK_END)
        size = self._file.tell()
        if size % page_size:
            # A torn trailing page (killed mid-write): drop it. Earlier
            # pages are whole — writes are page-granular and append-ordered.
            size -= size % page_size
            self._file.truncate(size)
        self.n_pages = size // page_size

    def read_page(self, index: int) -> bytes:
        if not 0 <= index < self.n_pages:
            raise PageError(f"page {index} out of range (file has {self.n_pages})")
        self._file.seek(index * self.page_size)
        data = self._file.read(self.page_size)
        self.stats.page_reads += 1
        return data

    def write_page(self, index: int, data: bytes) -> None:
        if len(data) != self.page_size:
            raise PageError(f"write of {len(data)} bytes to {self.page_size}B page")
        if index > self.n_pages:
            raise PageError(f"page {index} beyond end of file ({self.n_pages})")
        self._file.seek(index * self.page_size)
        self._file.write(data)
        self.stats.page_writes += 1
        self.n_pages = max(self.n_pages, index + 1)

    def append_page(self, data: bytes) -> int:
        index = self.n_pages
        self.write_page(index, data)
        return index

    def fsync(self) -> None:
        self._file.flush()
        os.fsync(self._file.fileno())
        self.stats.fsyncs += 1

    def truncate(self) -> None:
        """Drop every page (overlay reset at checkpoint)."""
        self._file.truncate(0)
        self.n_pages = 0

    def close(self) -> None:
        try:
            self._file.close()
        except OSError:  # pragma: no cover - best-effort close
            pass

    def __repr__(self) -> str:
        return f"<Pager {self.path}: {self.n_pages} × {self.page_size}B>"


class BufferPool:
    """LRU cache of decoded :class:`Page` objects over the page files.

    Cache-aside with write-behind: reads fill the pool on miss (from the
    between-checkpoint overlay first, else the checkpoint generation);
    mutations only mark pages dirty; a dirty page is written out when
    evicted (to the overlay) or at checkpoint (into the next generation).
    Pages the pool has never seen on disk (created since the last
    checkpoint) are pinned dirty until spilled or checkpointed.
    """

    def __init__(
        self,
        capacity: int,
        stats: PagerStats,
        read_base: "Callable[[int], Page | None]",
        overlay: Pager,
        page_size: int = DEFAULT_PAGE_SIZE,
    ) -> None:
        if capacity < 1:
            raise PageError("buffer pool capacity must be at least one page")
        self.capacity = capacity
        self.stats = stats
        self.page_size = page_size
        self._read_base = read_base  # logical pid -> Page from checkpoint gen
        self._overlay = overlay
        self._overlay_index: dict[int, int] = {}  # logical pid -> overlay file index
        self._cache: "OrderedDict[int, Page]" = OrderedDict()
        self._dirty: set[int] = set()
        self.on_evict: Callable[[int], None] | None = None  # crash-point hook

    # -- reads -------------------------------------------------------------------

    def get(self, pid: int) -> Page:
        page = self._cache.get(pid)
        if page is not None:
            self._cache.move_to_end(pid)
            self.stats.pool_hits += 1
            return page
        self.stats.pool_misses += 1
        overlay_idx = self._overlay_index.get(pid)
        if overlay_idx is not None:
            page = Page.from_bytes(self._overlay.read_page(overlay_idx), self.page_size)
        else:
            page = self._read_base(pid)
            if page is None:
                raise PageError(f"page {pid} is on neither overlay nor checkpoint")
        self._cache[pid] = page
        self._evict_to_capacity()
        return page

    # -- writes ------------------------------------------------------------------

    def put_new(self, pid: int, page: Page) -> None:
        """Register a freshly created page (dirty by definition)."""
        self._cache[pid] = page
        self._cache.move_to_end(pid)
        self._dirty.add(pid)
        self._evict_to_capacity()

    def mark_dirty(self, pid: int) -> None:
        if pid not in self._cache:  # pragma: no cover - callers get() first
            raise PageError(f"cannot dirty uncached page {pid}")
        self._dirty.add(pid)

    # -- eviction ----------------------------------------------------------------

    def _evict_to_capacity(self) -> None:
        while len(self._cache) > self.capacity:
            pid, page = self._cache.popitem(last=False)
            if pid in self._dirty:
                if self.on_evict is not None:
                    self.on_evict(pid)
                overlay_idx = self._overlay_index.get(pid)
                if overlay_idx is None:
                    overlay_idx = self._overlay.n_pages
                    self._overlay_index[pid] = overlay_idx
                self._overlay.write_page(overlay_idx, page.to_bytes())
                self._dirty.discard(pid)
            self.stats.evictions += 1

    # -- checkpoint support --------------------------------------------------------

    def dirty_pids(self) -> frozenset[int]:
        return frozenset(self._dirty)

    def after_checkpoint(self) -> None:
        """All pages are now clean and the overlay is obsolete."""
        self._dirty.clear()
        self._overlay_index.clear()
        self._overlay.truncate()

    def drop(self, pids: Iterable[int]) -> None:
        """Forget pages (relation dropped); overlay slots simply leak until
        the next checkpoint truncates the file."""
        for pid in pids:
            self._cache.pop(pid, None)
            self._dirty.discard(pid)
            self._overlay_index.pop(pid, None)

    def __len__(self) -> int:
        return len(self._cache)

    def __contains__(self, pid: int) -> bool:
        return pid in self._cache
