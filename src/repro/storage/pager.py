"""Page-I/O accounting: the paper's Section 3.6 storage cost model.

Assumptions copied from the paper: all indices are hash indices with no
overflowed buckets; tuples are unclustered, so fetching a tuple costs one
relation-page I/O; looking up a key costs one index-page I/O plus one page
per tuple returned; updating a tuple costs one page read (old value) and one
page write (new value); index pages are read (and written when the indexed
key changes) once per distinct key touched.

The :class:`IOCounter` is shared by every stored relation and index so a
maintenance run can be measured end to end and compared with the analytic
cost model in :mod:`repro.cost.page_io`.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class IOStats:
    """Immutable snapshot of I/O counts."""

    index_reads: int = 0
    index_writes: int = 0
    tuple_reads: int = 0
    tuple_writes: int = 0

    @property
    def total(self) -> int:
        return self.index_reads + self.index_writes + self.tuple_reads + self.tuple_writes

    def __sub__(self, other: "IOStats") -> "IOStats":
        return IOStats(
            self.index_reads - other.index_reads,
            self.index_writes - other.index_writes,
            self.tuple_reads - other.tuple_reads,
            self.tuple_writes - other.tuple_writes,
        )

    def __add__(self, other: "IOStats") -> "IOStats":
        return IOStats(
            self.index_reads + other.index_reads,
            self.index_writes + other.index_writes,
            self.tuple_reads + other.tuple_reads,
            self.tuple_writes + other.tuple_writes,
        )

    def __str__(self) -> str:
        return (
            f"{self.total} I/Os (idx r/w {self.index_reads}/{self.index_writes}, "
            f"tup r/w {self.tuple_reads}/{self.tuple_writes})"
        )


class IOCounter:
    """Mutable page-I/O counter charged by storage operations."""

    def __init__(self) -> None:
        self._index_reads = 0
        self._index_writes = 0
        self._tuple_reads = 0
        self._tuple_writes = 0
        self.enabled = True

    def charge_index_read(self, pages: int = 1) -> None:
        if self.enabled:
            self._index_reads += pages

    def charge_index_write(self, pages: int = 1) -> None:
        if self.enabled:
            self._index_writes += pages

    def charge_tuple_read(self, tuples: int = 1) -> None:
        if self.enabled:
            self._tuple_reads += tuples

    def charge_tuple_write(self, tuples: int = 1) -> None:
        if self.enabled:
            self._tuple_writes += tuples

    def snapshot(self) -> IOStats:
        return IOStats(
            self._index_reads, self._index_writes, self._tuple_reads, self._tuple_writes
        )

    def reset(self) -> None:
        self._index_reads = self._index_writes = 0
        self._tuple_reads = self._tuple_writes = 0

    @property
    def total(self) -> int:
        return self.snapshot().total

    class _Suspended:
        def __init__(self, counter: "IOCounter") -> None:
            self._counter = counter

        def __enter__(self) -> None:
            self._was_enabled = self._counter.enabled
            self._counter.enabled = False

        def __exit__(self, *exc) -> None:
            self._counter.enabled = self._was_enabled

    def suspended(self) -> "_Suspended":
        """Context manager that disables charging (setup / verification)."""
        return IOCounter._Suspended(self)

    class _Scoped:
        """Attributes the I/O charged inside a ``with`` block (see
        :meth:`IOCounter.scoped`). ``stats`` holds the block's
        :class:`IOStats` after exit; ``so_far`` reads it mid-block."""

        def __init__(self, counter: "IOCounter") -> None:
            self._counter = counter
            self._before = counter.snapshot()
            self.stats = IOStats()

        def __enter__(self) -> "IOCounter._Scoped":
            self._before = self._counter.snapshot()
            return self

        def __exit__(self, *exc) -> None:
            self.stats = self._counter.snapshot() - self._before

        @property
        def so_far(self) -> IOStats:
            """Charges accumulated since the block was entered."""
            return self._counter.snapshot() - self._before

    def scoped(self) -> "_Scoped":
        """Context manager that attributes charges to one scope.

        Charging stays enabled — the scope is pure measurement (built on
        :meth:`IOStats.__sub__`), so nesting and interleaving with
        :meth:`suspended` both do the obvious thing. Used for
        per-transaction I/O attribution in the engine layer.
        """
        return IOCounter._Scoped(self)
