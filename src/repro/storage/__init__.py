"""Storage engine: stored relations, hash indexes, page-I/O accounting."""

from repro.storage.database import Database
from repro.storage.histograms import Histogram
from repro.storage.index import HashIndex
from repro.storage.pager import IOCounter, IOStats
from repro.storage.relation import StorageError, StoredRelation
from repro.storage.statistics import Catalog, TableStats

__all__ = [
    "Catalog",
    "Database",
    "HashIndex",
    "Histogram",
    "IOCounter",
    "IOStats",
    "StorageError",
    "StoredRelation",
    "TableStats",
]
