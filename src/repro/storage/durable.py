"""The durable store: WAL-protected slotted pages behind the in-memory path.

Opt-in (``Database(durable_path=...)`` or ``REPRO_DURABLE``): the in-memory
:class:`~repro.storage.relation.StoredRelation` stays the oracle for
queries and for the paper's Section 3.6 accounting — nothing in this module
ever touches :class:`~repro.storage.pager.IOCounter`. The durable layer
shadows every committed change onto real fixed-size pages, with its own
traffic reported through :class:`~repro.storage.pager.PagerStats`.

Commit protocol (write-ahead rule)::

    validate deltas (size, multiplicity)  # reject-before-log
      → begin record → one delta record per relation → commit record
      → WAL barrier                       # the commit point
      → apply deltas to pages (in pool)   # redo in place, write-behind

Validation runs first because a durable commit record is replayed on
every subsequent open: a committed delta the page layer cannot apply
(an oversized record, a negative multiplicity) would make the directory
permanently unopenable, so it must reject the transaction *before* any
WAL append. Conversely, a failure *after* the barrier never raises out
of :meth:`DurableStore.commit` — the transaction is durably committed,
and raising would send the caller's undo-log rollback against the log
(memory rolled back, recovery rolling forward). Instead the store marks
itself ``failed``: later commits keep appending to the WAL but skip the
now-diverged pages, checkpoints refuse, and the next open rebuilds the
pages from the log. Recovery likewise skips (and records in
``recovery_errors``) a committed delta it cannot apply, rather than
failing every open.

The barrier strength is ``wal_sync`` (after SQLite's synchronous pragma):
``"full"`` fsyncs every commit; ``"normal"`` (default, ``REPRO_WAL_SYNC``)
flushes to the OS per commit and fsyncs at checkpoints and close — a
process crash loses nothing, an OS crash can lose recent commits but
never tears one.

Pages are only flushed by **checkpoints** (full snapshot into an immutable
``pages.<gen>`` generation file, then a ``checkpoint`` WAL record naming
the generation and carrying the catalog + page map, then the WAL rotated
down to just that record — replay starts there, so the log stays bounded
by history *since* the last checkpoint) or by **eviction**
(dirty pages spill to a scratch ``overlay`` file that is discarded on
recovery and truncated at checkpoint — the no-steal equivalent: nothing
uncommitted can ever reach the base pages, because nothing is applied to
pages before its commit record is synced).

Recovery (:class:`DurableStore` ``__init__``) is read-only over the files:
replay the WAL, find the last checkpoint record whose generation file
survives, load its pages, re-apply every *committed* transaction's deltas
after it. Running recovery twice is therefore a no-op — the only writes
are truncating a torn WAL tail and deleting orphan generations.

Crash points: every WAL/page/checkpoint boundary calls
``crash_hook(point_name)``. Tests inject in-process crashes by raising
:class:`CrashPoint` (after :meth:`DurableStore.freeze`, so post-"death"
cleanup code cannot touch the files); subprocess kills are driven by the
``REPRO_CRASH_AT=point[:nth]`` environment variable, which makes the nth
arrival at ``point`` call ``os._exit`` — a real mid-commit death.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Any, Callable, Iterator

from repro.algebra.multiset import Multiset, Row
from repro.algebra.schema import Schema
from repro.algebra.types import DataType
from repro.ivm.delta import Delta
from repro.obs.trace import NULL_TRACER
from repro.storage.pager import (
    DEFAULT_PAGE_SIZE,
    BufferPool,
    Page,
    PageError,
    Pager,
    PagerStats,
    pack_record,
    unpack_record,
)
from repro.storage.wal import WalError, WriteAheadLog, decode_delta, encode_delta

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.storage.relation import StoredRelation

DEFAULT_POOL_SIZE = 64
DEFAULT_CHECKPOINT_EVERY = 128
#: WAL sync modes, after SQLite's synchronous pragma: "full" fsyncs every
#: commit (no committed transaction is ever lost); "normal" (the default)
#: flushes every commit to the OS and fsyncs only at checkpoints and
#: close — a process crash loses nothing, an OS/power crash can lose the
#: tail of *recent* commits but never tears one (frame CRCs make a
#: half-written record equal to its absence).
WAL_SYNC_MODES = ("normal", "full")

#: exit status used by the env-driven subprocess crash injector
CRASH_EXIT_CODE = 137

#: every injectable crash boundary, in commit/checkpoint order
CRASH_POINTS = (
    "commit.wal",  # before any WAL append for this commit
    "commit.wal_commit",  # deltas appended, commit record not yet
    "commit.sync",  # commit record appended but not fsynced
    "commit.apply",  # WAL durable, no page touched yet
    "commit.apply_mid",  # after each relation's pages are updated
    "pool.evict",  # before a dirty page spills to the overlay
    "checkpoint.begin",  # before any generation page is written
    "checkpoint.page",  # before each generation page write
    "checkpoint.record",  # pages synced, checkpoint record not yet logged
    "checkpoint.cleanup",  # record synced, old generation not yet deleted
)


class CrashPoint(RuntimeError):
    """Raised by in-process crash injection at a named boundary."""


def env_durable_path() -> str | None:
    """Resolve the ``REPRO_DURABLE`` opt-in to a directory (or ``None``).

    A bare truthy flag (``1``/``true``/``yes``/``on``) selects the default
    ``.repro-durable`` directory; any other non-empty value *is* the path.
    """
    value = os.environ.get("REPRO_DURABLE", "").strip()
    if not value:
        return None
    if value.lower() in ("1", "true", "yes", "on"):
        return ".repro-durable"
    return value


def _env_crash_hook(spec: str | None = None) -> Callable[[str], None] | None:
    """Build the ``REPRO_CRASH_AT=point[:nth]`` subprocess kill hook.

    ``spec`` overrides the environment — harnesses that must survive their
    own setup phase pop the variable, build, then arm the hook explicitly.
    """
    if spec is None:
        spec = os.environ.get("REPRO_CRASH_AT", "")
    spec = spec.strip()
    if not spec:
        return None
    point, _, nth = spec.partition(":")
    target = int(nth) if nth else 1
    seen = {"n": 0}

    def hook(name: str) -> None:
        if name == point:
            seen["n"] += 1
            if seen["n"] >= target:
                os._exit(CRASH_EXIT_CODE)  # a real mid-commit death

    return hook


def _schema_meta(schema: Schema) -> dict[str, Any]:
    return {
        "cols": [[c.name, c.dtype.value] for c in schema.columns],
        "keys": sorted(sorted(k) for k in schema.keys),
    }


def _schema_from_meta(meta: dict[str, Any]) -> Schema:
    return Schema.of(
        *((name, DataType(value)) for name, value in meta["cols"]),
        keys=meta["keys"],
    )


def _net(delta: Delta) -> dict[Row, int]:
    """Net multiplicity change per row (a modify is delete-old + insert-new)."""
    net: dict[Row, int] = {}
    for row, count in delta.inserts.items():
        net[row] = net.get(row, 0) + count
    for row, count in delta.deletes.items():
        net[row] = net.get(row, 0) - count
    for old, new in delta.modifies:
        net[old] = net.get(old, 0) - 1
        net[new] = net.get(new, 0) + 1
    return net


class _RelState:
    """Durable-side state of one relation: its pages and row directory."""

    __slots__ = ("schema_meta", "indexes", "pages", "directory")

    def __init__(self, schema_meta: dict[str, Any]) -> None:
        self.schema_meta = schema_meta
        self.indexes: list[list[str]] = []
        self.pages: list[int] = []  # logical page ids, allocation order
        self.directory: dict[Row, tuple[int, int, int]] = {}  # row -> (pid, slot, count)


class DurableStore:
    """Pages + WAL + buffer pool behind one :class:`Database`.

    The store is a *shadow*: the in-memory relations are authoritative at
    runtime; the store's job is to be able to reconstruct them after a
    crash. All methods are no-ops after :meth:`freeze` (simulated death).
    """

    def __init__(
        self,
        path: str,
        page_size: int = DEFAULT_PAGE_SIZE,
        pool_size: int | None = None,
        checkpoint_every: int | None = None,
        crash_hook: Callable[[str], None] | None = None,
        wal_sync: str | None = None,
    ) -> None:
        self.path = path
        self.page_size = page_size
        self.wal_sync = (
            wal_sync
            if wal_sync is not None
            else os.environ.get("REPRO_WAL_SYNC", "normal")
        )
        if self.wal_sync not in WAL_SYNC_MODES:
            raise WalError(
                f"wal_sync must be one of {WAL_SYNC_MODES}, got {self.wal_sync!r}"
            )
        self.pool_size = pool_size if pool_size is not None else int(
            os.environ.get("REPRO_POOL_SIZE", DEFAULT_POOL_SIZE)
        )
        self.checkpoint_every = (
            checkpoint_every
            if checkpoint_every is not None
            else int(os.environ.get("REPRO_CHECKPOINT_EVERY", DEFAULT_CHECKPOINT_EVERY))
        )
        self.crash_hook = crash_hook if crash_hook is not None else _env_crash_hook()
        self.stats = PagerStats()
        self.last_commit_stats: dict[str, int] | None = None
        #: set to the causing exception when a post-barrier page apply
        #: failed — the pages are no longer trusted (commits keep logging,
        #: checkpoints refuse) until the directory is reopened.
        self.failed: Exception | None = None
        #: committed transactions recovery could not re-apply (skip-and-
        #: report: a damaged log entry must not make the store unopenable)
        self.recovery_errors: list[str] = []
        self._frozen = False
        self._closed = False

        os.makedirs(path, exist_ok=True)
        self._wal = WriteAheadLog(os.path.join(path, "wal"), self.stats)
        self._rels: dict[str, _RelState] = {}
        self._next_pid = 0
        self._gen = 0
        self._base_pager: Pager | None = None
        self._base_index: dict[int, int] = {}  # logical pid -> gen-file page index
        # The overlay is a scratch spill target — always start it empty.
        overlay = Pager(os.path.join(path, "overlay"), page_size, create=True, stats=self.stats)
        self._pool = BufferPool(
            self.pool_size, self.stats, self._read_base, overlay, page_size
        )
        self._pool.on_evict = lambda pid: self._crash("pool.evict")

        self._active: str | None = None
        self._buffer: list[tuple[str, Delta]] = []
        self._undo_journaled = False
        self._auto_seq = 0
        self._commits = 0

        self.recovered = self._recover()

    # -- crash injection ---------------------------------------------------------

    def _crash(self, point: str) -> None:
        if self.crash_hook is not None and not self._frozen:
            self.crash_hook(point)

    def freeze(self) -> None:
        """Simulate process death: every subsequent durable op is a no-op,
        so in-process cleanup code (rollback, abort) cannot touch the files
        a real crash would have left behind."""
        self._frozen = True

    # -- recovery ----------------------------------------------------------------

    def _gen_path(self, gen: int) -> str:
        return os.path.join(self.path, f"pages.{gen}")

    def _read_base(self, pid: int) -> Page | None:
        idx = self._base_index.get(pid)
        if idx is None or self._base_pager is None:
            return None
        return Page.from_bytes(self._base_pager.read_page(idx), self.page_size)

    def _recover(self) -> bool:
        # A crash mid-rotation can leave the sidecar the rotated log was
        # being written to; the real log is still authoritative.
        sidecar = self._wal.path + ".new"
        if os.path.exists(sidecar):
            os.remove(sidecar)
        records = list(self._wal.replay())  # also truncates a torn tail
        start = 0
        for i in range(len(records) - 1, -1, -1):
            record = records[i]
            if record["t"] == "checkpoint" and os.path.exists(
                self._gen_path(record["gen"])
            ):
                self._load_checkpoint(record)
                start = i + 1
                break
        pending: dict[str, list[tuple[str, Delta]]] = {}
        for record in records[start:]:
            kind = record["t"]
            if kind == "create":
                self._rels[record["rel"]] = _RelState(record["schema"])
            elif kind == "drop":
                state = self._rels.pop(record["rel"], None)
                if state is not None:
                    self._pool.drop(state.pages)
            elif kind == "index":
                state = self._rels.get(record["rel"])
                if state is not None and record["cols"] not in state.indexes:
                    state.indexes.append(record["cols"])
            elif kind == "begin":
                pending[record["txn"]] = []
            elif kind == "delta":
                pending.setdefault(record["txn"], []).append(
                    (record["rel"], decode_delta(record))
                )
            elif kind == "commit":
                try:
                    for rel, delta in pending.pop(record["txn"], ()):
                        self._apply_to_pages(rel, delta)
                except Exception as exc:
                    # Commits are size-validated before they reach the
                    # log, so this is a legacy or damaged entry — skip
                    # and report rather than fail every open forever.
                    self.recovery_errors.append(f"txn {record['txn']}: {exc}")
                else:
                    self.stats.recovered_txns += 1
            # "undo" / "abort" / stale "checkpoint": rollback progress and
            # superseded snapshots — redo replay ignores both (an
            # uncommitted transaction's forward deltas were never logged,
            # so an interrupted rollback simply never happened).
        # Orphan generations: written but never recorded (crash mid-
        # checkpoint) or superseded. Only the live one is referenced.
        for entry in os.listdir(self.path):
            if entry.startswith("pages.") and entry != f"pages.{self._gen}":
                os.remove(os.path.join(self.path, entry))
        return bool(records)

    def _load_checkpoint(self, record: dict[str, Any]) -> None:
        self._gen = record["gen"]
        meta = record["meta"]
        self._next_pid = meta["next_pid"]
        self._base_pager = Pager(
            self._gen_path(self._gen), self.page_size, stats=self.stats
        )
        self._base_index = {int(pid): idx for pid, idx in meta["page_map"].items()}
        for name, rel_meta in meta["catalog"].items():
            state = _RelState(rel_meta["schema"])
            state.indexes = [list(cols) for cols in rel_meta["indexes"]]
            state.pages = list(rel_meta["pages"])
            for pid in state.pages:
                page = self._pool.get(pid)
                for slot, payload in page.records():
                    row, count = unpack_record(payload)
                    state.directory[row] = (pid, slot, count)
            self._rels[name] = state

    # -- catalog (for Database restore) --------------------------------------------

    def relations(self) -> Iterator[tuple[str, Schema, list[list[str]]]]:
        """Recovered catalog: (name, schema, index column lists)."""
        for name, state in self._rels.items():
            yield name, _schema_from_meta(state.schema_meta), state.indexes

    def contents(self, name: str) -> Multiset:
        """Recovered contents of one relation (from the row directory)."""
        data = Multiset()
        for row, (_, _, count) in self._rels[name].directory.items():
            data.add(row, count)
        return data

    # -- DDL journal hooks ---------------------------------------------------------

    def on_create(self, name: str, schema: Schema) -> None:
        if self._frozen:
            return
        self._rels[name] = _RelState(_schema_meta(schema))
        self._wal.append({"t": "create", "rel": name, "schema": _schema_meta(schema)})

    def on_drop(self, name: str) -> None:
        if self._frozen:
            return
        state = self._rels.pop(name, None)
        if state is not None:
            self._pool.drop(state.pages)
        self._wal.append({"t": "drop", "rel": name})

    def on_index(self, name: str, cols: tuple[str, ...]) -> None:
        if self._frozen:
            return
        state = self._rels.get(name)
        listed = list(cols)
        if state is None or listed in state.indexes:
            return
        state.indexes.append(listed)
        self._wal.append({"t": "index", "rel": name, "cols": listed})

    # -- the delta journal (StoredRelation hook) -------------------------------------

    def on_delta(self, name: str, delta: Delta) -> None:
        """One applied forward delta. Buffered into the active transaction,
        or auto-committed as a singleton transaction when none is open
        (bulk loads, direct ``apply_delta`` outside the engine)."""
        if self._frozen or delta.is_empty:
            return
        if self._active is not None:
            self._buffer.append((name, delta))
            return
        self._auto_seq += 1
        self.begin(f"__auto_{self._auto_seq}")
        self._buffer.append((name, delta))
        try:
            self.commit()
        except Exception:
            # A rejected singleton (oversized row) must not wedge the
            # store behind a permanently-open auto transaction.
            self.abort()
            raise

    # -- transaction bracket ---------------------------------------------------------

    def begin(self, txn_id: str) -> None:
        if self._frozen:
            return
        if self._active is not None:
            raise WalError(f"transaction {self._active!r} already active")
        self._active = txn_id
        self._buffer = []
        self._undo_journaled = False

    def commit(self, tracer=None) -> None:
        """The write-ahead commit: log → fsync → apply to pages."""
        if self._frozen:
            return
        if self._active is None:
            raise WalError("commit without begin")
        tracer = tracer if tracer is not None else NULL_TRACER
        before = self.stats.snapshot()
        txn_id = self._active
        if self._buffer:
            # Reject-before-log: anything the page layer cannot apply must
            # fail here, while the WAL still knows nothing — a durable
            # commit record is replayed on every open, so an unapplyable
            # committed delta would brick the directory.
            self._validate_buffer()
            self._crash("commit.wal")
            with tracer.span("wal_append", txn=txn_id, deltas=len(self._buffer)):
                self._wal.append({"t": "begin", "txn": txn_id})
                for rel, delta in self._buffer:
                    self._wal.append(
                        {"t": "delta", "txn": txn_id, "rel": rel, **encode_delta(delta)}
                    )
                self._crash("commit.wal_commit")
                self._wal.append({"t": "commit", "txn": txn_id})
            self._crash("commit.sync")
            with tracer.span("wal_fsync", mode=self.wal_sync):
                if self.wal_sync == "full":
                    self._wal.sync()
                else:
                    # "normal": the record reaches the OS now (a process
                    # kill cannot lose it); fsync waits for the next
                    # checkpoint or close.
                    self._wal.flush()
            # -------- the commit point: everything below is redo-able --------
            self._crash("commit.apply")
            with tracer.span("page_apply", deltas=len(self._buffer)):
                if self.failed is None:
                    try:
                        for rel, delta in self._buffer:
                            self._apply_to_pages(rel, delta)
                            self._crash("commit.apply_mid")
                    except CrashPoint:
                        raise  # a simulated death unwinds like a real one
                    except Exception as exc:
                        # The commit record is already durable — the
                        # transaction IS committed. Raising here would
                        # run the caller's undo-log rollback against the
                        # log (memory rolled back, recovery rolling
                        # forward). Fail the page cache instead: the WAL
                        # stays the sole truth, later commits skip the
                        # diverged pages, checkpoints refuse, and the
                        # next open rebuilds the pages from the log.
                        self.failed = exc
        self._active = None
        self._buffer = []
        self._commits += 1
        if (
            self.failed is None
            and self.checkpoint_every
            and self._commits % self.checkpoint_every == 0
        ):
            self.checkpoint(tracer)
        self.last_commit_stats = self.stats.since(before)

    def abort(self) -> None:
        """Discard the buffered transaction (nothing reached WAL or pages).

        If rollback progress was journaled (:meth:`journal_undo`), an
        ``abort`` record closes the trail for inspection."""
        if self._frozen:
            return
        if self._active is not None and self._undo_journaled:
            self._wal.append({"t": "abort", "txn": self._active})
        self._active = None
        self._buffer = []
        self._undo_journaled = False

    def journal_undo(self, relation: "StoredRelation", inverse: Delta) -> None:
        """Journal one applied rollback step (called by ``UndoLog.rollback``).

        Recovery ignores these records — the rolled-back transaction's
        forward deltas were never logged, so replay reconstructs the
        pre-transaction state directly — but the trail makes an
        interrupted rollback inspectable and auditable."""
        if self._frozen:
            return
        self._wal.append(
            {
                "t": "undo",
                "txn": self._active if self._active is not None else "?",
                "rel": relation.name,
                **encode_delta(inverse),
            }
        )
        self._undo_journaled = True

    # -- record validation (reject-before-log) -----------------------------------------

    @property
    def max_record_bytes(self) -> int:
        """Largest packed ``[row, count]`` record one slotted page holds
        (the page header and the slot length word subtracted)."""
        return self.page_size - 4

    def _check_record(self, rel: str, row: Row, count: int) -> None:
        payload = pack_record([list(row), count])
        if len(payload) > self.max_record_bytes:
            raise PageError(
                f"row {row!r} in {rel!r} packs to {len(payload)} bytes, over "
                f"the {self.max_record_bytes}-byte limit of a "
                f"{self.page_size}-byte page"
            )

    def validate_delta(
        self, rel: str, delta: Delta, counts: dict[Row, int] | None = None
    ) -> dict[Row, int]:
        """Dry-run one delta's page placement; raise what apply would raise.

        Runs every check :meth:`_apply_to_pages` performs (record size,
        negative multiplicity) without touching a page, so callers can
        reject a transaction before its commit record — or any DDL —
        reaches the WAL. ``counts`` threads prior-delta results when
        simulating a multi-delta buffer (pass the returned dict back in);
        a relation not yet in the catalog simulates as empty, which is
        what ``Database.create_relation`` needs for the initial load.
        """
        if counts is None:
            counts = {}
        state = self._rels.get(rel)
        for row, change in _net(delta).items():
            if change == 0:
                continue
            base = counts.get(row)
            if base is None:
                existing = state.directory.get(row) if state is not None else None
                base = existing[2] if existing else 0
            count = base + change
            if count < 0:
                raise WalError(f"negative count for {row} in {rel} during apply")
            if count > 0:
                self._check_record(rel, row, count)
            counts[row] = count
        return counts

    def _validate_buffer(self) -> None:
        shadow: dict[str, dict[Row, int]] = {}
        for rel, delta in self._buffer:
            self._state(rel)  # an unknown relation also rejects pre-log
            shadow[rel] = self.validate_delta(rel, delta, shadow.get(rel))

    # -- page application ------------------------------------------------------------

    def _state(self, rel: str) -> _RelState:
        state = self._rels.get(rel)
        if state is None:
            raise WalError(f"delta against unknown relation {rel!r}")
        return state

    def _apply_to_pages(self, rel: str, delta: Delta) -> None:
        state = self._state(rel)
        for row, change in _net(delta).items():
            if change == 0:
                continue
            existing = state.directory.get(row)
            count = (existing[2] if existing else 0) + change
            if count < 0:
                raise WalError(f"negative count for {row} in {rel} during apply")
            if existing is not None:
                pid, slot, _ = existing
                page = self._pool.get(pid)
                page.mark_dead(slot)
                self._pool.mark_dirty(pid)
                del state.directory[row]
            if count > 0:
                payload = pack_record([list(row), count])
                pid, slot = self._place(state, payload)
                state.directory[row] = (pid, slot, count)

    def _place(self, state: _RelState, payload: bytes) -> tuple[int, int]:
        """Append a record to the relation's fill page, or open a new one."""
        if state.pages:
            pid = state.pages[-1]
            page = self._pool.get(pid)
            if page.fits(payload):
                slot = page.add(payload)
                self._pool.mark_dirty(pid)
                return pid, slot
        pid = self._next_pid
        self._next_pid += 1
        page = Page(self.page_size)
        slot = page.add(payload)  # PageError for an oversized row
        state.pages.append(pid)
        self._pool.put_new(pid, page)
        return pid, slot

    # -- checkpoint --------------------------------------------------------------------

    def checkpoint(self, tracer=None) -> int:
        """Snapshot every page into a new immutable generation.

        Protocol: write all pages to ``pages.<gen+1>``, fsync, then append
        (and fsync) a ``checkpoint`` record carrying the catalog and the
        page map. Only once that record is durable does the store switch
        generations, rotate the WAL down to just the checkpoint record
        (replay starts there — everything earlier is dead weight),
        truncate the overlay, and delete the old generation — a crash
        anywhere in between leaves the previous checkpoint intact.
        Returns the number of pages written."""
        if self._frozen:
            return 0
        if self.failed is not None:
            # The in-pool pages diverged from the log after a post-barrier
            # apply failure; snapshotting them would durably corrupt what
            # the WAL can still rebuild.
            raise WalError(
                f"page state diverged after a post-commit apply failure "
                f"({self.failed!r}); reopen the directory to rebuild from the WAL"
            )
        tracer = tracer if tracer is not None else NULL_TRACER
        self._crash("checkpoint.begin")
        gen = self._gen + 1
        pager = Pager(self._gen_path(gen), self.page_size, create=True, stats=self.stats)
        pids = sorted(pid for state in self._rels.values() for pid in state.pages)
        new_index: dict[int, int] = {}
        with tracer.span("checkpoint_pages", pages=len(pids), gen=gen):
            for i, pid in enumerate(pids):
                self._crash("checkpoint.page")
                pager.write_page(i, self._pool.get(pid).to_bytes())
                new_index[pid] = i
            pager.fsync()
        self._crash("checkpoint.record")
        meta = {
            "next_pid": self._next_pid,
            "page_map": {str(pid): idx for pid, idx in new_index.items()},
            "catalog": {
                name: {
                    "schema": state.schema_meta,
                    "indexes": state.indexes,
                    "pages": state.pages,
                }
                for name, state in self._rels.items()
            },
        }
        record = {"t": "checkpoint", "gen": gen, "meta": meta}
        with tracer.span("checkpoint_record", gen=gen):
            self._wal.append(record)
            self._wal.sync()
        old_pager, old_gen = self._base_pager, self._gen
        self._base_pager, self._base_index, self._gen = pager, new_index, gen
        self._crash("checkpoint.cleanup")
        self._wal.rotate([record])
        self._pool.after_checkpoint()
        if old_pager is not None:
            old_pager.close()
            os.remove(self._gen_path(old_gen))
        self.stats.checkpoints += 1
        return len(pids)

    # -- lifecycle ---------------------------------------------------------------------

    @property
    def generation(self) -> int:
        """The live checkpoint generation (0 before the first checkpoint)."""
        return self._gen

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if not self._frozen:
            # A clean close is a durability barrier in every sync mode. A
            # frozen ("dead") store must not touch the files — a crashed
            # process cannot fsync.
            self._wal.sync()
        self._wal.close()
        if self._base_pager is not None:
            self._base_pager.close()
        self._pool._overlay.close()

    def __repr__(self) -> str:
        return (
            f"<DurableStore {self.path}: gen {self._gen}, "
            f"{len(self._rels)} relations, {self._next_pid} pages>"
        )
