"""Catalog statistics: cardinalities and per-column distinct counts.

The paper assumes "statistics about the inputs to an operation" from which
delta sizes and query result sizes can be computed ("Our techniques are
independent of the exact formulae ... although our examples use specific
formulae"). We keep the same statistics its worked example needs: row
counts and distinct value counts, from which fanouts (e.g. 10 employees per
department) follow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.storage.database import Database
from repro.storage.histograms import Histogram


@dataclass(frozen=True)
class TableStats:
    """Statistics for one relation (base or derived).

    ``histograms`` (optional, numeric columns) refine range/equality
    selectivities; derived-node statistics do not carry them — estimation
    falls back to the System-R constants above base level."""

    rows: float
    distinct: Mapping[str, float] = field(default_factory=dict)
    histograms: Mapping[str, Histogram] = field(default_factory=dict)

    def distinct_of(self, columns: Iterable[str]) -> float:
        """Estimated distinct count of a column combination.

        Independence assumption: product of per-column distinct counts,
        capped by the row count. Unknown columns contribute the row count
        (i.e. assumed unique), keeping estimates conservative.
        """
        cols = list(columns)
        if not cols:
            return 1.0
        product = 1.0
        for col in cols:
            product *= self.distinct.get(col, self.rows)
            if product >= self.rows:
                return max(self.rows, 1.0)
        return max(min(product, self.rows), 1.0)

    def fanout(self, columns: Iterable[str]) -> float:
        """Average number of rows per distinct key of ``columns``."""
        if self.rows <= 0:
            return 0.0
        return self.rows / self.distinct_of(columns)

    def scaled(self, selectivity: float) -> "TableStats":
        """Stats after filtering with the given selectivity (histograms are
        dropped: the filtered distribution is unknown)."""
        rows = self.rows * selectivity
        distinct = {c: min(d, rows) for c, d in self.distinct.items()}
        return TableStats(rows, distinct)

    def histogram_for(self, column: str) -> Histogram | None:
        return self.histograms.get(column)


class Catalog:
    """Per-relation statistics, declared or collected from a database."""

    def __init__(self, stats: Mapping[str, TableStats] | None = None) -> None:
        self._stats: dict[str, TableStats] = dict(stats or {})

    def set(self, name: str, stats: TableStats) -> None:
        self._stats[name] = stats

    def get(self, name: str) -> TableStats:
        try:
            return self._stats[name]
        except KeyError:
            raise KeyError(f"no statistics for relation {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._stats

    @staticmethod
    def from_database(
        db: Database, histogram_buckets: int = 10
    ) -> "Catalog":
        """Collect exact statistics (and numeric-column histograms, when
        ``histogram_buckets`` > 0) from stored contents."""
        from repro.algebra.types import DataType

        catalog = Catalog()
        for relation in db:
            data = relation.contents()
            rows = float(data.total())
            distinct: dict[str, float] = {}
            histograms: dict[str, Histogram] = {}
            for i, column in enumerate(relation.schema.columns):
                values = [row[i] for row in data.rows()]
                distinct[column.name] = float(len(set(values)))
                if (
                    histogram_buckets > 0
                    and values
                    and column.dtype in (DataType.INT, DataType.FLOAT)
                ):
                    expanded = [row[i] for row in data.expand()]
                    histograms[column.name] = Histogram.build(
                        expanded, histogram_buckets
                    )
            catalog.set(relation.name, TableStats(rows, distinct, histograms))
        return catalog

    @staticmethod
    def paper_catalog(
        n_depts: int = 1000, emps_per_dept: int = 10, n_adepts: int = 20
    ) -> "Catalog":
        """The declared statistics of the paper's Section 3.6 example."""
        n_emps = n_depts * emps_per_dept
        return Catalog(
            {
                "Dept": TableStats(
                    float(n_depts),
                    {"DName": float(n_depts), "MName": float(n_depts), "Budget": 200.0},
                ),
                "Emp": TableStats(
                    float(n_emps),
                    {"EName": float(n_emps), "DName": float(n_depts), "Salary": 40.0},
                ),
                "ADepts": TableStats(float(n_adepts), {"DName": float(n_adepts)}),
            }
        )
