"""Write-ahead log: committed transactions as framed forward-delta records.

The durable layer's redo log. Every record is one JSON object framed as

    u32 payload_length | u32 crc32(payload) | payload

appended strictly before the page images change (write-ahead rule). The
log is delta-based rather than page-based — the deltas the maintenance
machinery already produces (and whose inverses :class:`~repro.storage.undo.
UndoLog` journals) *are* the natural recovery log for materialized state,
so redo is "replay the committed deltas since the last checkpoint" and
undo is "replay the journaled inverse deltas of the one incomplete
transaction".

Record vocabulary (the ``"t"`` field):

``create``/``drop``
    DDL — relation created (name, schema columns, index column lists) or
    dropped.
``begin`` / ``delta`` / ``commit``
    One committed transaction: ``begin txn``, one ``delta`` per touched
    relation (inserts/deletes as ``[row, count]`` pairs, modifies as
    ``[old, new]`` pairs), then ``commit txn``. Recovery applies a
    transaction's deltas only when its ``commit`` record made it to disk.
``undo`` / ``abort``
    Rollback progress: each ``undo`` journals one inverse delta *after*
    it was applied in memory, ``abort`` closes the rollback. Recovery
    ignores both (an uncommitted transaction's forward deltas were never
    logged), but the trail makes an interrupted rollback inspectable and,
    because recovery rebuilds from the checkpoint + committed deltas
    only, an interrupted rollback is finished implicitly — the half-
    undone transaction simply never happened.
``checkpoint``
    Names a page-snapshot generation; replay starts after the last
    checkpoint record whose generation file survives on disk. Once that
    record is durable the log is rotated down to just it
    (:meth:`WriteAheadLog.rotate`), so log length — and recovery cost —
    is bounded by history since the last checkpoint, not total history.

Torn tails: a crash mid-append leaves a final frame with a short or
corrupt payload. :meth:`WriteAheadLog.replay` stops at the first frame
that fails its length or CRC check and truncates the file there, so the
log is again append-clean after recovery. Frames before the torn one are
intact because appends are sequential.
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import Any, Iterator

from repro.algebra.multiset import Multiset
from repro.ivm.delta import Delta
from repro.storage.pager import PagerStats, pack_record, unpack_record

_FRAME_HEADER = struct.Struct("<II")  # payload length, crc32(payload)


class WalError(Exception):
    """Raised for unrecoverable log damage (not for a torn tail)."""


def encode_delta(delta: Delta) -> dict[str, Any]:
    """Delta -> JSON-safe dict (rows become lists; pack_record re-tuples)."""
    out: dict[str, Any] = {}
    if len(delta.inserts):
        out["ins"] = [
            [list(row), count]
            for row, count in sorted(delta.inserts.items(), key=repr)
        ]
    if len(delta.deletes):
        out["del"] = [
            [list(row), count]
            for row, count in sorted(delta.deletes.items(), key=repr)
        ]
    if delta.modifies:
        out["mod"] = [[list(old), list(new)] for old, new in delta.modifies]
    return out


def decode_delta(obj: dict[str, Any]) -> Delta:
    ins = Multiset()
    for row, count in obj.get("ins", ()):
        ins.add(tuple(row), count)
    dels = Multiset()
    for row, count in obj.get("del", ()):
        dels.add(tuple(row), count)
    mods = [(tuple(old), tuple(new)) for old, new in obj.get("mod", ())]
    return Delta(inserts=ins, deletes=dels, modifies=mods)


class WriteAheadLog:
    """Append-only framed record log with torn-tail recovery."""

    def __init__(self, path: str, stats: PagerStats | None = None) -> None:
        self.path = path
        self.stats = stats if stats is not None else PagerStats()
        # Append mode creates the file; reads reopen separately in replay.
        self._file = open(path, "ab")

    # -- writing -----------------------------------------------------------------

    def append(self, record: dict[str, Any]) -> None:
        payload = pack_record(record)
        frame = _FRAME_HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        self._file.write(frame)
        self.stats.wal_records += 1
        self.stats.wal_bytes += len(frame)

    def flush(self) -> None:
        """Push buffered frames to the OS (survives a process kill, not a
        power loss — the ``wal_sync="normal"`` commit barrier)."""
        self._file.flush()

    def sync(self) -> None:
        self._file.flush()
        os.fsync(self._file.fileno())
        self.stats.fsyncs += 1

    def rotate(self, records: list[dict[str, Any]]) -> None:
        """Atomically replace the log's contents with just ``records``.

        Checkpoint rotation: replay starts at the last checkpoint record,
        so once that record is durable every earlier frame is dead weight
        — without rotation the log grows without bound and every open
        reads the full history. The new log is written to a ``.new``
        sidecar, fsynced, then ``os.replace``d over the old one: a crash
        before the replace leaves the old (longer but valid) log, a crash
        after leaves the new one — recovery reads either correctly, and
        deletes a stale sidecar on open.
        """
        sidecar = self.path + ".new"
        with open(sidecar, "wb") as fresh:
            for record in records:
                payload = pack_record(record)
                fresh.write(
                    _FRAME_HEADER.pack(len(payload), zlib.crc32(payload)) + payload
                )
            fresh.flush()
            os.fsync(fresh.fileno())
        self.stats.fsyncs += 1
        self._file.close()
        os.replace(sidecar, self.path)
        self._file = open(self.path, "ab")

    # -- reading -----------------------------------------------------------------

    def replay(self) -> Iterator[dict[str, Any]]:
        """Yield every intact record; truncate the log at a torn tail.

        Safe to call on an open-for-append log (recovery runs before the
        first new append). Truncation only ever removes the final,
        incompletely-written frame — committed records all precede it.
        """
        self._file.flush()
        good_end = 0
        with open(self.path, "rb") as reader:
            data = reader.read()
        offset = 0
        while offset < len(data):
            if offset + _FRAME_HEADER.size > len(data):
                break  # torn header
            length, crc = _FRAME_HEADER.unpack_from(data, offset)
            start = offset + _FRAME_HEADER.size
            payload = data[start : start + length]
            if len(payload) < length or zlib.crc32(payload) != crc:
                break  # torn or corrupt payload
            yield unpack_record(payload)
            offset = start + length
            good_end = offset
        if good_end < len(data):
            # Reopen truncating past the tear, keeping append position right.
            self._file.close()
            with open(self.path, "r+b") as fixer:
                fixer.truncate(good_end)
            self._file = open(self.path, "ab")

    # -- lifecycle ---------------------------------------------------------------

    @property
    def size(self) -> int:
        self._file.flush()
        return os.path.getsize(self.path)

    def close(self) -> None:
        try:
            self._file.close()
        except OSError:  # pragma: no cover - best-effort close
            pass

    def __repr__(self) -> str:
        return f"<WriteAheadLog {self.path}: {self.size}B>"
