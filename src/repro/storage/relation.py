"""Stored relations: multiset contents, hash indexes, charged maintenance.

The charging policy implements the paper's Section 3.6 accounting exactly:

* **lookup** — one index-page read plus one tuple-page read per match;
* **modification** — per index, one index-page read per distinct key
  touched (an index-page *write* only when the indexed columns change);
  per tuple, one page read (old value) and one page write (new value);
* **insertion** — one page write per tuple; per index, one index-page read
  and one index-page write per distinct key;
* **deletion** — one page write per tuple; per index, one index-page read
  and one index-page write per distinct key.

Declared candidate keys are enforced incrementally on every mutation, which
is what licenses the optimizer's key-based reasoning (delta completeness,
aggregate push-down).
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.algebra.compile import tuple_getter
from repro.algebra.multiset import Multiset, Row
from repro.algebra.schema import Schema
from repro.ivm.delta import Delta
from repro.storage.index import HashIndex
from repro.storage.pager import IOCounter


class StorageError(Exception):
    """Raised for storage-level violations (missing index, key violation)."""


class StoredRelation:
    """A stored multiset relation with hash indexes and I/O accounting."""

    def __init__(self, name: str, schema: Schema, counter: IOCounter | None = None) -> None:
        self.name = name
        self.schema = schema
        self.counter = counter if counter is not None else IOCounter()
        self._data = Multiset()
        self._indexes: dict[tuple[str, ...], HashIndex] = {}
        # One incremental uniqueness map per declared candidate key, with a
        # compiled positional getter per key (this runs once per applied row).
        self._key_positions = {
            key: tuple(schema.index_of(a) for a in sorted(key)) for key in schema.keys
        }
        self._key_getters = {
            key: tuple_getter(positions) for key, positions in self._key_positions.items()
        }
        self._key_maps: dict[frozenset[str], dict[tuple, int]] = {
            key: {} for key in schema.keys
        }
        # Optional durability journal (DurableStore duck type). Set by the
        # Database after the relation's recovered contents are loaded, so
        # bootstrap loads are never double-journaled.
        self._journal = None
        # Monotonic mutation counter; every row-level change bumps it, so
        # derived snapshots (the columnar conversion cache) can validate
        # cheaply without hashing contents.
        self._version = 0

    # -- indexes -----------------------------------------------------------------

    def create_index(self, columns: Iterable[str]) -> HashIndex:
        cols = tuple(self.schema.resolve(c) for c in columns)
        if cols in self._indexes:
            return self._indexes[cols]
        index = HashIndex(self.schema, cols, self.counter)
        index.rebuild(self._data)
        self._indexes[cols] = index
        if self._journal is not None:
            self._journal.on_index(self.name, cols)
        return index

    def index_on(self, columns: Iterable[str]) -> HashIndex | None:
        cols = tuple(self.schema.resolve(c) for c in columns)
        return self._indexes.get(cols)

    @property
    def indexes(self) -> tuple[tuple[str, ...], ...]:
        return tuple(self._indexes)

    # -- loading / reading ----------------------------------------------------------

    def load(self, rows: Iterable[Row]) -> None:
        """Bulk load (uncharged — initial materialization is outside the
        paper's maintenance accounting)."""
        loaded = Multiset()
        with self.counter.suspended():
            for row in rows:
                row = self.schema.validate_tuple(row)
                self._apply_row(row, 1)
                loaded.add(row, 1)
        if self._journal is not None and loaded:
            self._journal.on_delta(self.name, Delta(inserts=loaded))

    def load_multiset(self, data: Multiset) -> None:
        loaded = Multiset()
        with self.counter.suspended():
            for row, count in data.items():
                row = self.schema.validate_tuple(row)
                self._apply_row(row, count)
                loaded.add(row, count)
        if self._journal is not None and loaded:
            self._journal.on_delta(self.name, Delta(inserts=loaded))

    def contents(self) -> Multiset:
        """Uncharged copy of the contents (verification / snapshots)."""
        return self._data.copy()

    @property
    def version(self) -> int:
        """Mutation counter: changes iff the stored rows changed."""
        return self._version

    def column_data(self):
        """Uncharged bulk view for columnar conversion: ``(rows, counts)``
        as the live dict views of the backing multiset — no per-row tuple
        construction, no copy. Callers must not mutate and must not hold
        the views across a mutation (check :attr:`version`)."""
        counts = self._data._counts
        return counts.keys(), counts.values()

    def scan(self) -> Multiset:
        """Full scan: one tuple-page read per tuple."""
        self.counter.charge_tuple_read(self._data.total())
        return self._data.copy()

    def lookup(self, columns: Iterable[str], key: tuple[Any, ...]) -> Multiset:
        """Indexed lookup: 1 index page + 1 page per matching tuple.

        Raises :class:`StorageError` when no index on ``columns`` exists —
        the executor decides explicitly when to fall back to a scan.
        """
        cols = tuple(self.schema.resolve(c) for c in columns)
        index = self._indexes.get(cols)
        if index is None:
            raise StorageError(f"no index on {cols} for relation {self.name}")
        return index.probe(key)

    def lookup_many(
        self, columns: Iterable[str], keys: Iterable[tuple[Any, ...]]
    ) -> Multiset:
        """Batched indexed lookup; charges identically to per-key ``lookup``."""
        cols = tuple(self.schema.resolve(c) for c in columns)
        index = self._indexes.get(cols)
        if index is None:
            raise StorageError(f"no index on {cols} for relation {self.name}")
        return index.probe_many(keys)

    def lookup_buckets(
        self, columns: Iterable[str], keys: Iterable[tuple[Any, ...]]
    ) -> dict[tuple[Any, ...], Multiset]:
        """Bucket-grained batched lookup (see :meth:`HashIndex.probe_buckets`);
        charges identically to :meth:`lookup_many`. The returned buckets are
        borrowed read-only views of the index."""
        cols = tuple(self.schema.resolve(c) for c in columns)
        index = self._indexes.get(cols)
        if index is None:
            raise StorageError(f"no index on {cols} for relation {self.name}")
        return index.probe_buckets(keys)

    @property
    def row_count(self) -> int:
        return self._data.total()

    # -- maintenance ------------------------------------------------------------------

    def apply_delta(self, delta: Delta) -> Delta:
        """Apply a delta with the paper's charging policy.

        Returns the **inverse delta** (O(|delta|)): applying it restores
        the pre-delta contents exactly — the engine layer's rollback
        primitive. Application is atomic: if any row fails validation
        (absent tuple, key violation), every row already applied is undone
        (uncharged) before the error propagates, so the relation is never
        left mid-delta.
        """
        applied: list[tuple[Row, int]] = []
        try:
            self._charge_and_apply_modifies(delta.modifies, applied)
            self._charge_and_apply(delta.inserts, sign=+1, applied=applied)
            self._charge_and_apply(delta.deletes, sign=-1, applied=applied)
        except StorageError:
            with self.counter.suspended():
                for row, count in reversed(applied):
                    self._apply_row(row, -count)
            raise
        if self._journal is not None:
            self._journal.on_delta(self.name, delta)
        return delta.inverted()

    def _charge_and_apply_modifies(
        self, modifies: list[tuple[Row, Row]], applied: list[tuple[Row, int]] | None = None
    ) -> None:
        if not modifies:
            return
        for index in self._indexes.values():
            key_of = index.key_of
            pairs = [(key_of(old), key_of(new)) for old, new in modifies]
            self.counter.charge_index_read(len({k for pair in pairs for k in pair}))
            changed_pages = {
                key for ko, kn in pairs if ko != kn for key in (ko, kn)
            }
            if changed_pages:
                self.counter.charge_index_write(len(changed_pages))
        # Remove all old values before adding any new ones so that
        # key-swapping batches do not trip the uniqueness check transiently.
        validated = []
        for old, new in modifies:
            old = self.schema.validate_tuple(old)
            new = self.schema.validate_tuple(new)
            if old not in self._data:
                raise StorageError(f"modify of absent tuple {old} in {self.name}")
            self.counter.charge_tuple_read(1)
            self.counter.charge_tuple_write(1)
            self._apply_row(old, -1, applied)
            validated.append(new)
        for new in validated:
            self._apply_row(new, 1, applied)

    def _charge_and_apply(
        self, rows: Multiset, sign: int, applied: list[tuple[Row, int]] | None = None
    ) -> None:
        if not rows:
            return
        for index in self._indexes.values():
            keys = index.keys_touched(rows.rows())
            self.counter.charge_index_read(keys)
            self.counter.charge_index_write(keys)
        for row, count in rows.items():
            row = self.schema.validate_tuple(row)
            if sign < 0 and self._data.count(row) < count:
                raise StorageError(f"delete of absent tuple {row} from {self.name}")
            self.counter.charge_tuple_write(count)
            self._apply_row(row, sign * count, applied)

    def _apply_row(
        self, row: Row, count: int, applied: list[tuple[Row, int]] | None = None
    ) -> None:
        """Apply one row-count change to data, indexes, and key maps.

        Validates every candidate key *before* mutating anything, so a key
        violation leaves the relation untouched; when ``applied`` is given,
        the change is journaled for the caller's atomicity rollback."""
        staged = []
        for key, getter in self._key_getters.items():
            kv = getter(row)
            key_map = self._key_maps[key]
            new_count = key_map.get(kv, 0) + count
            if new_count > 1:
                raise StorageError(f"key {sorted(key)} violated in {self.name} by {kv}")
            staged.append((key_map, kv, new_count))
        for key_map, kv, new_count in staged:
            if new_count <= 0:
                key_map.pop(kv, None)
            else:
                key_map[kv] = new_count
        counts = self._data._counts
        new = counts.get(row, 0) + count
        if new == 0:
            counts.pop(row, None)
        else:
            counts[row] = new
        for index in self._indexes.values():
            index.add(row, count)
        self._version += 1
        if applied is not None:
            applied.append((row, count))

    def __repr__(self) -> str:
        return f"<StoredRelation {self.name}: {self.row_count} rows, {len(self._indexes)} indexes>"
