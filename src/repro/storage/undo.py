"""Logical undo: per-transaction journals of inverse deltas.

:meth:`StoredRelation.apply_delta` returns the inverse of every delta it
applies (O(|delta|)); an :class:`UndoLog` collects those inverses in
application order so a whole transaction — base-relation updates plus all
materialized-view updates — can be rolled back exactly. Rollback applies
the inverses in reverse order with the I/O counter suspended: undoing work
is bookkeeping, not priced maintenance, so it never pollutes the paper's
cost accounting.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.ivm.delta import Delta
    from repro.storage.relation import StoredRelation


class UndoLog:
    """An ordered journal of (relation, inverse delta) rollback entries."""

    def __init__(self) -> None:
        self._entries: list[tuple["StoredRelation", "Delta"]] = []

    def record(self, relation: "StoredRelation", inverse: "Delta") -> None:
        """Journal one applied delta's inverse (in application order)."""
        if not inverse.is_empty:
            self._entries.append((relation, inverse))

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def entries(self) -> tuple[tuple["StoredRelation", "Delta"], ...]:
        return tuple(self._entries)

    def rollback(
        self,
        journal: "Callable[[StoredRelation, Delta], None] | None" = None,
    ) -> None:
        """Undo every journaled delta, newest first, uncharged.

        Each entry is *peeked*, applied, and only then popped: if
        ``apply_delta`` raises mid-rollback the failing entry (and
        everything older) stays in the log, so the rollback can be
        resumed by calling again — a pop-first loop would silently lose
        the entry it was undoing. After a complete rollback the log is
        empty; rolling back an empty log is a no-op, so the call is
        idempotent.

        ``journal`` (when given) is called with each entry *after* its
        inverse has been applied — the durable layer uses it to write
        rollback progress into the WAL.
        """
        while self._entries:
            relation, inverse = self._entries[-1]
            with relation.counter.suspended():
                relation.apply_delta(inverse)
            # Pop before journaling: the inverse is applied either way, and
            # a journal failure must not leave an entry that a resumed
            # rollback would apply a second time.
            self._entries.pop()
            if journal is not None:
                journal(relation, inverse)

    def clear(self) -> None:
        """Drop the journal without undoing (after a successful commit)."""
        self._entries.clear()


class EpochLog:
    """Bounded history of committed inverse deltas, for snapshot reads.

    Every successful commit advances the shared ``epoch``. A reader that
    wants a stable view *pins* the current epoch; from then on each
    commit's inverse deltas (the same journal :class:`UndoLog` builds for
    rollback) are retained, so the reader can reconstruct the pinned
    state from the live relations by replaying inverses newest-first down
    to its epoch — no locks held against the writer while it reads.
    Unpinning releases the history: with no pins outstanding nothing is
    retained, so single-session engines pay nothing for this machinery.

    Entries are keyed by relation *name* (deltas are logical), so a
    snapshot replay never aliases live storage objects.
    """

    def __init__(self) -> None:
        self.epoch = 0
        self._entries: list[tuple[int, tuple[tuple[str, "Delta"], ...]]] = []
        self._pins: dict[int, int] = {}
        self._lock = threading.Lock()

    def pin(self) -> int:
        """Pin the current epoch (refcounted); returns the pinned epoch."""
        with self._lock:
            epoch = self.epoch
            self._pins[epoch] = self._pins.get(epoch, 0) + 1
            return epoch

    def unpin(self, epoch: int) -> None:
        """Release one pin; history nobody can still read is dropped."""
        with self._lock:
            left = self._pins.get(epoch, 0) - 1
            if left > 0:
                self._pins[epoch] = left
            else:
                self._pins.pop(epoch, None)
            self._trim_locked()

    def _trim_locked(self) -> None:
        if not self._pins:
            self._entries.clear()
            return
        oldest = min(self._pins)
        if self._entries and self._entries[0][0] <= oldest:
            self._entries = [e for e in self._entries if e[0] > oldest]

    def note_commit(self, undo: "UndoLog") -> int:
        """Advance the epoch for one successful commit; retain its inverse
        deltas only while at least one reader holds a pin. Called by the
        engine's commit pipeline *before* the undo journal is discarded."""
        with self._lock:
            self.epoch += 1
            if self._pins:
                entries = tuple(
                    (relation.name, inverse) for relation, inverse in undo.entries
                )
                if entries:
                    self._entries.append((self.epoch, entries))
            return self.epoch

    def inverses_since(self, epoch: int) -> list[tuple[int, tuple[tuple[str, "Delta"], ...]]]:
        """The retained (epoch, entries) pairs newer than ``epoch``, oldest
        first — replay them *reversed* (newest first, entries reversed
        within each commit) to walk current state back to ``epoch``."""
        with self._lock:
            return [e for e in self._entries if e[0] > epoch]

    @property
    def pinned(self) -> int:
        """Number of outstanding pins (over all epochs)."""
        with self._lock:
            return sum(self._pins.values())

    @property
    def retained(self) -> int:
        """Number of commits whose inverses are currently retained."""
        with self._lock:
            return len(self._entries)
