"""Logical undo: per-transaction journals of inverse deltas.

:meth:`StoredRelation.apply_delta` returns the inverse of every delta it
applies (O(|delta|)); an :class:`UndoLog` collects those inverses in
application order so a whole transaction — base-relation updates plus all
materialized-view updates — can be rolled back exactly. Rollback applies
the inverses in reverse order with the I/O counter suspended: undoing work
is bookkeeping, not priced maintenance, so it never pollutes the paper's
cost accounting.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.ivm.delta import Delta
    from repro.storage.relation import StoredRelation


class UndoLog:
    """An ordered journal of (relation, inverse delta) rollback entries."""

    def __init__(self) -> None:
        self._entries: list[tuple["StoredRelation", "Delta"]] = []

    def record(self, relation: "StoredRelation", inverse: "Delta") -> None:
        """Journal one applied delta's inverse (in application order)."""
        if not inverse.is_empty:
            self._entries.append((relation, inverse))

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def entries(self) -> tuple[tuple["StoredRelation", "Delta"], ...]:
        return tuple(self._entries)

    def rollback(
        self,
        journal: "Callable[[StoredRelation, Delta], None] | None" = None,
    ) -> None:
        """Undo every journaled delta, newest first, uncharged.

        Each entry is *peeked*, applied, and only then popped: if
        ``apply_delta`` raises mid-rollback the failing entry (and
        everything older) stays in the log, so the rollback can be
        resumed by calling again — a pop-first loop would silently lose
        the entry it was undoing. After a complete rollback the log is
        empty; rolling back an empty log is a no-op, so the call is
        idempotent.

        ``journal`` (when given) is called with each entry *after* its
        inverse has been applied — the durable layer uses it to write
        rollback progress into the WAL.
        """
        while self._entries:
            relation, inverse = self._entries[-1]
            with relation.counter.suspended():
                relation.apply_delta(inverse)
            # Pop before journaling: the inverse is applied either way, and
            # a journal failure must not leave an entry that a resumed
            # rollback would apply a second time.
            self._entries.pop()
            if journal is not None:
                journal(relation, inverse)

    def clear(self) -> None:
        """Drop the journal without undoing (after a successful commit)."""
        self._entries.clear()
