"""Sharded stored relations: per-shard rows, indexes, and version counters
behind the ordinary :class:`~repro.storage.relation.StoredRelation` surface.

Design rule: **sharding must be invisible to correctness and accounting.**
Every read and write goes through the same public methods with the same
paper §3.6 charges as the unsharded relation — the shards only add *routing*:

* :class:`ShardedRelation` keeps the global multiset, key maps, and
  ``version`` (so scans, columnar conversion, key checks, and
  ``apply_delta`` charging are unsharded code paths verbatim) and
  additionally routes every applied row to its shard, which keeps its own
  row multiset and mutation ``version``.
* :class:`ShardedIndex` holds one :class:`~repro.storage.index.HashIndex`
  per shard. A probe whose key determines the partition columns is
  **routed** to exactly one shard's index; any other probe **broadcasts**
  (consults every shard). Both charge exactly what the global
  ``HashIndex`` would: one index-page read per key plus one tuple read per
  match — distinct keys own disjoint buckets and a row lives in exactly
  one shard, so the merged result and its size are identical.
* Each shard keeps a ``probes`` tally (bumped only while the I/O counter
  is enabled) so tests can assert the headline invariant: co-partitioned
  delta propagation never probes a remote shard.

:func:`split_delta_by_shard` is the routing step the maintainer uses on a
transaction's staged deltas; it refuses (returns ``None``) when a delta
cannot be split without changing observable behaviour — a modification
pair or a candidate-key-sharing delete/insert pair straddling shards —
in which case the maintainer falls back to the broadcast (unsharded) track.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.algebra.compile import tuple_getter
from repro.algebra.multiset import Multiset, Row
from repro.algebra.schema import Schema
from repro.ivm.delta import Delta
from repro.storage.index import HashIndex
from repro.storage.partition import Partitioner
from repro.storage.pager import IOCounter
from repro.storage.relation import StoredRelation


class _Shard:
    """One shard's private state: rows, a mutation counter, a probe tally."""

    __slots__ = ("sid", "data", "version", "probes")

    def __init__(self, sid: int) -> None:
        self.sid = sid
        self.data = Multiset()
        self.version = 0
        self.probes = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<_Shard {self.sid}: {self.data.total()} rows, {self.probes} probes>"


class ShardedIndex:
    """Per-shard hash indexes behind the :class:`HashIndex` surface.

    Charges are identical to a single global index; see the module
    docstring for why. The ``key_of``/``keys_touched``/``apply`` surface
    that :class:`StoredRelation`'s charging code uses stays *global* —
    per-shard distinct-key counts would overcount keys that span shards
    on a non-routable index.
    """

    def __init__(self, relation: "ShardedRelation", columns: tuple[str, ...]) -> None:
        schema = relation.schema
        self.columns = tuple(schema.resolve(c) for c in columns)
        self._positions = tuple(schema.index_of(c) for c in self.columns)
        self.key_of = tuple_getter(self._positions)
        self._relation = relation
        self._counter = relation.counter
        self._shards = relation.shards
        self._locals = [
            HashIndex(schema, self.columns, relation.counter)
            for _ in relation.shards
        ]
        # A probe key determines the shard iff it contains every partition
        # column; precompute where they sit inside the key tuple.
        pcols = relation.partition_columns
        if set(pcols) <= set(self.columns):
            positions = tuple(self.columns.index(c) for c in pcols)
            self._route = tuple_getter(positions)
        else:
            self._route = None

    @property
    def routable(self) -> bool:
        """Whether probe keys determine the owning shard (no broadcasts)."""
        return self._route is not None

    def _shard_of_key(self, key: tuple[Any, ...]) -> int:
        return self._relation.partitioner.shard_of(self._route(key))

    def _note(self, sid: int) -> None:
        if self._counter.enabled:
            self._shards[sid].probes += 1

    # -- probes -------------------------------------------------------------------

    def probe(self, key: tuple[Any, ...]) -> Multiset:
        """One index-page read, one tuple read per match (routed or not)."""
        if self._route is not None:
            sid = self._shard_of_key(key)
            self._note(sid)
            return self._locals[sid].probe(key)
        self._counter.charge_index_read()
        out = Multiset()
        matches = 0
        for sid, local in enumerate(self._locals):
            self._note(sid)
            bucket = local._buckets.get(key)
            if bucket is None:
                continue
            matches += local._totals[key]
            out._counts.update(bucket._counts)
        self._counter.charge_tuple_read(matches)
        return out

    def probe_many(self, keys: Iterable[tuple[Any, ...]]) -> Multiset:
        """Batched probe, charge-identical to :meth:`HashIndex.probe_many`."""
        out = Multiset()
        counts = out._counts
        n_keys = 0
        matches = 0
        route = self._route
        if route is not None:
            locals_ = self._locals
            shard_of = self._relation.partitioner.shard_of
            note = self._note
            for key in keys:
                n_keys += 1
                sid = shard_of(route(key))
                note(sid)
                local = locals_[sid]
                bucket = local._buckets.get(key)
                if bucket is None:
                    continue
                matches += local._totals[key]
                # A row lives in exactly one shard and distinct keys own
                # disjoint buckets, so the C-level merge stays safe even
                # for non-distinct iterables of *distinct* keys; repeated
                # keys fall back to row-wise accumulation.
                if counts.keys() & bucket._counts.keys():
                    for row, count in bucket.items():
                        counts[row] = counts.get(row, 0) + count
                else:
                    counts.update(bucket._counts)
        else:
            for key in keys:
                n_keys += 1
                for sid, local in enumerate(self._locals):
                    self._note(sid)
                    bucket = local._buckets.get(key)
                    if bucket is None:
                        continue
                    matches += local._totals[key]
                    if counts.keys() & bucket._counts.keys():
                        for row, count in bucket.items():
                            counts[row] = counts.get(row, 0) + count
                    else:
                        counts.update(bucket._counts)
        self._counter.charge_index_read(n_keys)
        self._counter.charge_tuple_read(matches)
        return out

    def probe_buckets(
        self, keys: Iterable[tuple[Any, ...]]
    ) -> dict[tuple[Any, ...], Multiset]:
        """Bucket-grained probe, charge-identical to
        :meth:`HashIndex.probe_buckets`. Routed keys return the owning
        shard's bucket as a borrowed read-only view; broadcast keys whose
        rows span shards return a fresh merged bucket (still read-only by
        contract)."""
        out: dict[tuple[Any, ...], Multiset] = {}
        n_keys = 0
        matches = 0
        route = self._route
        for key in keys:
            n_keys += 1
            if route is not None:
                sid = self._shard_of_key(key)
                self._note(sid)
                local = self._locals[sid]
                bucket = local._buckets.get(key)
                if bucket is None:
                    continue
                matches += local._totals[key]
                out[key] = bucket
            else:
                merged: Multiset | None = None
                for sid, local in enumerate(self._locals):
                    self._note(sid)
                    bucket = local._buckets.get(key)
                    if bucket is None:
                        continue
                    matches += local._totals[key]
                    if merged is None:
                        merged = bucket
                    else:
                        combined = Multiset()
                        combined._counts.update(merged._counts)
                        combined._counts.update(bucket._counts)
                        merged = combined
                if merged is not None:
                    out[key] = merged
        self._counter.charge_index_read(n_keys)
        self._counter.charge_tuple_read(matches)
        return out

    def probe_free(self, key: tuple[Any, ...]) -> Multiset:
        """Uncharged lookup (storage-internal use, like the unsharded one)."""
        if self._route is not None:
            return self._locals[self._shard_of_key(key)].probe_free(key)
        out = Multiset()
        for local in self._locals:
            bucket = local._buckets.get(key)
            if bucket is not None:
                out._counts.update(bucket._counts)
        return out

    # -- maintenance ----------------------------------------------------------------

    def add(self, row: Row, count: int = 1) -> None:
        if count == 0:
            return
        self._locals[self._relation.shard_of_row(row)].add(row, count)

    def apply(self, delta: Multiset) -> tuple[int, int]:
        """Signed-delta application; global distinct-key accounting (see
        :meth:`HashIndex.apply`)."""
        keys = {self.key_of(row) for row, _ in delta.items()}
        for row, count in delta.items():
            self.add(row, count)
        return len(keys), len(keys)

    def keys_touched(self, rows: Iterable[Row]) -> int:
        return len({self.key_of(r) for r in rows})

    def distinct_keys(self) -> int:
        seen: set[tuple[Any, ...]] = set()
        for local in self._locals:
            seen.update(local._buckets.keys())
        return len(seen)

    def rebuild(self, data: Multiset) -> None:
        for local in self._locals:
            local.rebuild(Multiset())
        for row, count in data.items():
            self.add(row, count)

    def shard_index(self, sid: int) -> HashIndex:
        """The shard-local index (tests / diagnostics)."""
        return self._locals[sid]


class ShardedRelation(StoredRelation):
    """A stored relation whose rows, indexes, and version counters are
    additionally partitioned by a :class:`Partitioner`.

    The global multiset / key maps / version of the base class are kept
    authoritative so every unsharded code path (scans, candidate-key
    enforcement, delta charging, columnar conversion) behaves bit-
    identically; shards hold the routed copies that maintenance probes
    and the parallel runtime consume.
    """

    def __init__(
        self,
        name: str,
        schema: Schema,
        counter: IOCounter | None = None,
        partitioner: Partitioner | None = None,
    ) -> None:
        if partitioner is None:
            raise ValueError("ShardedRelation requires a partitioner")
        super().__init__(name, schema, counter)
        self.partitioner = partitioner
        self.partition_columns = tuple(
            schema.resolve(c) for c in partitioner.columns
        )
        self._partition_getter = tuple_getter(
            tuple(schema.index_of(c) for c in self.partition_columns)
        )
        self.shards = [_Shard(i) for i in range(partitioner.n_shards)]

    @property
    def n_shards(self) -> int:
        return self.partitioner.n_shards

    def shard_of_row(self, row: Row) -> int:
        return self.partitioner.shard_of(self._partition_getter(row))

    def shard_row_counts(self) -> list[int]:
        return [shard.data.total() for shard in self.shards]

    def shard_probe_counts(self) -> list[int]:
        return [shard.probes for shard in self.shards]

    # -- overridden storage hooks ---------------------------------------------------

    def create_index(self, columns: Iterable[str]) -> ShardedIndex:
        cols = tuple(self.schema.resolve(c) for c in columns)
        if cols in self._indexes:
            return self._indexes[cols]  # type: ignore[return-value]
        index = ShardedIndex(self, cols)
        index.rebuild(self._data)
        self._indexes[cols] = index  # type: ignore[assignment]
        if self._journal is not None:
            self._journal.on_index(self.name, cols)
        return index

    def _apply_row(
        self, row: Row, count: int, applied: list[tuple[Row, int]] | None = None
    ) -> None:
        # The base class validates keys, then mutates data / key maps /
        # indexes (ShardedIndex.add routes to the owning shard's local
        # index) — only after it succeeds do we mirror the row into its
        # shard's multiset and bump the shard's version.
        super()._apply_row(row, count, applied)
        shard = self.shards[self.shard_of_row(row)]
        counts = shard.data._counts
        new = counts.get(row, 0) + count
        if new == 0:
            counts.pop(row, None)
        else:
            counts[row] = new
        shard.version += 1

    def __repr__(self) -> str:
        return (
            f"<ShardedRelation {self.name}: {self.row_count} rows, "
            f"{len(self._indexes)} indexes, {self.partitioner.describe()}>"
        )


def split_delta_by_shard(
    relation: ShardedRelation, delta: Delta
) -> list[Delta] | None:
    """Route one relation's staged delta to its shards.

    Returns one (possibly empty) :class:`Delta` per shard, or ``None``
    when splitting would change observable behaviour, i.e. when

    * a modification pair moves a row across shards (the pair would lose
      its modify identity — and its cheaper modify charging — if split), or
    * a delete and an insert share the relation's smallest candidate key
      but live on different shards: downstream ``repair_modifications``
      pairs exactly such rows into a modification, and a per-shard run
      could not see both halves.

    The maintainer treats ``None`` as "take the broadcast track".
    """
    n = relation.partitioner.n_shards
    shard_of = relation.shard_of_row
    parts = [Delta() for _ in range(n)]
    for old, new in delta.modifies:
        sid = shard_of(old)
        if sid != shard_of(new):
            return None
        parts[sid].modifies.append((old, new))
    for row, count in delta.inserts.items():
        parts[shard_of(row)].inserts.add(row, count)
    for row, count in delta.deletes.items():
        parts[shard_of(row)].deletes.add(row, count)
    schema = relation.schema
    if schema.keys and delta.inserts and delta.deletes:
        key = min(schema.keys, key=lambda k: (len(k), sorted(k)))
        getter = tuple_getter([schema.index_of(a) for a in sorted(key)])
        owner: dict[tuple[Any, ...], int] = {}
        for row in delta.deletes.rows():
            owner[getter(row)] = shard_of(row)
        for row in delta.inserts.rows():
            sid = owner.get(getter(row))
            if sid is not None and sid != shard_of(row):
                return None
    return parts
